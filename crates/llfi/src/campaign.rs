//! Fault-injection campaigns (paper §IV-A).
//!
//! One fault per run, ≥ thousands of runs per benchmark, outcomes classified
//! against the golden run into the paper's taxonomy (Fig. 5 / Table II).
//! Runs are embarrassingly parallel; specs are pre-drawn serially from the
//! seed so results are independent of thread count.

use crate::site::SiteTable;
use crate::stats::ci95;
use epvf_core::FaultModel;
use epvf_interp::{
    CrashKind, ExecConfig, ExecError, InjectionSpec, Interpreter, Outcome, ReplayOutcome,
    RunResult, Snapshot, TimeoutKind,
};
use epvf_ir::Module;
use epvf_telemetry::{Ctr, Progress, Tmr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Classified result of one injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjOutcome {
    /// Completed with golden-identical output.
    Benign,
    /// Completed with corrupted output — silent data corruption.
    Sdc,
    /// Hardware exception of the given class.
    Crash(CrashKind),
    /// Exceeded the dynamic-instruction budget.
    Hang,
    /// A §V duplication detector fired.
    Detected,
    /// Killed by a supervision watchdog (fuel or wall-clock deadline)
    /// before reaching any semantic outcome.
    TimedOut(TimeoutKind),
    /// The run panicked (in every attempt its retry budget allowed) and
    /// was isolated by the supervisor instead of killing the campaign.
    /// The panic payload is recorded in the matching
    /// [`QuarantineRecord`](crate::QuarantineRecord).
    Quarantined,
}

impl InjOutcome {
    /// Whether the run crashed (any exception class).
    pub fn is_crash(self) -> bool {
        matches!(self, InjOutcome::Crash(_))
    }

    /// Whether the run was cut short by the supervisor (watchdog kill or
    /// panic quarantine) rather than classified semantically.
    pub fn is_supervised_kill(self) -> bool {
        matches!(self, InjOutcome::TimedOut(_) | InjOutcome::Quarantined)
    }

    /// The outcome-class counter this classification lands in. The seven
    /// classes partition `llfi.campaign.runs_total` — the conservation law
    /// `epvf metrics-check` enforces.
    pub(crate) fn counter(self) -> Ctr {
        match self {
            InjOutcome::Benign => Ctr::CampaignRunsBenign,
            InjOutcome::Sdc => Ctr::CampaignRunsSdc,
            InjOutcome::Crash(_) => Ctr::CampaignRunsCrash,
            InjOutcome::Hang => Ctr::CampaignRunsHang,
            InjOutcome::Detected => Ctr::CampaignRunsDetected,
            InjOutcome::TimedOut(_) => Ctr::CampaignRunsTimedOut,
            InjOutcome::Quarantined => Ctr::CampaignRunsQuarantined,
        }
    }
}

/// How completed-run outputs are compared against the golden run when
/// classifying SDC vs benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OutputCompare {
    /// Compare the printed form (floats at six significant digits) — what
    /// the paper's toolchain effectively does: Rodinia prints results with
    /// limited precision and LLFI diffs the output files.
    #[default]
    Printed,
    /// Bit-exact comparison (strictest possible SDC definition).
    Exact,
}

/// Campaign options.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Interpreter/memory configuration for the injected runs.
    pub exec: ExecConfig,
    /// Hang threshold as a multiple of the golden dynamic-instruction count.
    pub hang_multiplier: u64,
    /// Worker threads (1 = fully serial).
    pub threads: usize,
    /// SDC comparison semantics.
    pub compare: OutputCompare,
    /// Checkpoint spacing in dynamic instructions for the replay engine:
    /// injected runs resume from the nearest checkpoint at or before their
    /// injection point instead of re-executing the prefix.
    /// [`Self::CKPT_AUTO`] (the default) picks ~64 evenly spaced
    /// checkpoints; [`Self::CKPT_OFF`] disables checkpointing and restores
    /// full from-scratch replays.
    pub ckpt_interval: u64,
    /// How many times a panicking run is re-executed before it is
    /// quarantined. Retries distinguish transient poison (an environmental
    /// hiccup that succeeds on re-run) from deterministic poison (a run
    /// that panics every time and must be isolated).
    pub retries: u32,
    /// Fuel budget (dynamic instructions) for *injected* runs; exhausting
    /// it yields [`InjOutcome::TimedOut`]`(`[`TimeoutKind::Fuel`]`)`.
    /// Unlike the hang threshold this is a supervision kill, not a
    /// semantic classification. The golden run is never fuel-limited.
    pub run_fuel: Option<u64>,
    /// Wall-clock deadline per injected run; exceeding it yields
    /// [`InjOutcome::TimedOut`]`(`[`TimeoutKind::Deadline`]`)`. Inherently
    /// non-deterministic — off by default, and outcomes produced under a
    /// deadline are excluded from the byte-identical-aggregates contract.
    pub run_deadline: Option<std::time::Duration>,
    /// Test hook: make every injected run panic once its dynamic
    /// instruction count reaches this value, exercising the panic
    /// isolation path end to end. Never set outside tests and the CI
    /// panic-injection smoke.
    pub poison_at: Option<u64>,
}

impl CampaignConfig {
    /// `ckpt_interval` value selecting an automatic spacing:
    /// `max(golden_dyn_insts / 64, 1024)`.
    pub const CKPT_AUTO: u64 = u64::MAX;
    /// `ckpt_interval` value disabling checkpoint-resume entirely.
    pub const CKPT_OFF: u64 = 0;
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            exec: ExecConfig::default(),
            hang_multiplier: 10,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            compare: OutputCompare::default(),
            ckpt_interval: CampaignConfig::CKPT_AUTO,
            retries: 1,
            run_fuel: None,
            run_deadline: None,
            poison_at: None,
        }
    }
}

/// One quarantined run: the spec that panicked on every attempt, the
/// panic payload, and how many retries were burned proving the poison
/// deterministic. Collected in [`CampaignResult::quarantines`] and
/// renderable as a replayable `.repro` file via
/// [`Campaign::render_quarantine_repro`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Index of the run in the campaign's spec list (draw order).
    pub index: usize,
    /// The injection spec whose run panicked.
    pub spec: InjectionSpec,
    /// Panic payload (or internal-error message) from the final attempt.
    pub payload: String,
    /// Attempts beyond the first (i.e. retries actually consumed).
    pub retries: u32,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-run `(spec, outcome)` pairs, in draw order.
    pub runs: Vec<(InjectionSpec, InjOutcome)>,
    /// Quarantined runs (panic isolation), in draw order. Empty for
    /// healthy campaigns.
    pub quarantines: Vec<QuarantineRecord>,
}

impl CampaignResult {
    /// Total runs.
    pub fn n(&self) -> usize {
        self.runs.len()
    }

    /// Count of a specific outcome class.
    pub fn count(&self, pred: impl Fn(InjOutcome) -> bool) -> usize {
        self.runs.iter().filter(|(_, o)| pred(*o)).count()
    }

    /// Fraction of crashes (all classes).
    pub fn crash_rate(&self) -> f64 {
        self.count(InjOutcome::is_crash) as f64 / self.n().max(1) as f64
    }

    /// Fraction of SDCs.
    pub fn sdc_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Sdc) as f64 / self.n().max(1) as f64
    }

    /// Fraction of benign runs.
    pub fn benign_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Benign) as f64 / self.n().max(1) as f64
    }

    /// Fraction of hangs.
    pub fn hang_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Hang) as f64 / self.n().max(1) as f64
    }

    /// Fraction of detected (duplication-protected) runs.
    pub fn detected_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Detected) as f64 / self.n().max(1) as f64
    }

    /// Fraction of watchdog-killed runs (fuel or deadline).
    pub fn timed_out_rate(&self) -> f64 {
        self.count(|o| matches!(o, InjOutcome::TimedOut(_))) as f64 / self.n().max(1) as f64
    }

    /// Fraction of quarantined (panicking) runs.
    pub fn quarantined_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Quarantined) as f64 / self.n().max(1) as f64
    }

    /// Fraction of runs the supervisor cut short instead of classifying —
    /// the campaign's degradation signal. `epvf inject` exits with the
    /// "degraded" code when this exceeds its `--max-unsound` threshold.
    pub fn unsound_rate(&self) -> f64 {
        self.count(InjOutcome::is_supervised_kill) as f64 / self.n().max(1) as f64
    }

    /// Crash-class counts in the paper's Table II column order
    /// `[SF, A, MMA, AE]`.
    pub fn crash_kind_counts(&self) -> [usize; 4] {
        let mut out = [0usize; 4];
        for (_, o) in &self.runs {
            if let InjOutcome::Crash(k) = o {
                out[match k {
                    CrashKind::Segfault => 0,
                    CrashKind::Abort => 1,
                    CrashKind::Misaligned => 2,
                    CrashKind::Arithmetic => 3,
                }] += 1;
            }
        }
        out
    }

    /// Relative crash-class frequencies (Table II rows); zeros if no crash.
    pub fn crash_kind_fractions(&self) -> [f64; 4] {
        let counts = self.crash_kind_counts();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        counts.map(|c| c as f64 / total as f64)
    }

    /// 95% confidence interval of the crash rate.
    pub fn crash_rate_ci95(&self) -> (f64, f64) {
        ci95(self.count(InjOutcome::is_crash), self.n())
    }

    /// 95% confidence interval of the SDC rate.
    pub fn sdc_rate_ci95(&self) -> (f64, f64) {
        ci95(self.count(|o| o == InjOutcome::Sdc), self.n())
    }
}

/// Why a campaign could not be prepared.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// Interpreter setup failed (unknown entry, arity mismatch).
    Setup(ExecError),
    /// The golden run did not complete — a campaign needs fault-free
    /// reference outputs.
    GoldenFailed(Outcome),
    /// The golden trace contains no injectable register reads.
    NoInjectableSites,
    /// An internal invariant failed while preparing the campaign (e.g. the
    /// checkpoint pass diverged from the traced golden run). Reported as a
    /// structured error rather than a panic so callers can surface it with
    /// a proper exit code.
    Internal(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Setup(e) => write!(f, "campaign setup: {e}"),
            CampaignError::GoldenFailed(o) => {
                write!(f, "golden run must complete, but it ended with {o}")
            }
            CampaignError::NoInjectableSites => {
                write!(f, "the trace contains no register reads to inject into")
            }
            CampaignError::Internal(msg) => write!(f, "campaign internal error: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Setup(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for CampaignError {
    fn from(e: ExecError) -> Self {
        CampaignError::Setup(e)
    }
}

/// A prepared fault-injection campaign over one program + input.
///
/// # Examples
///
/// ```
/// use epvf_llfi::{Campaign, CampaignConfig};
/// use epvf_ir::{ModuleBuilder, Type, Value};
///
/// let mut mb = ModuleBuilder::new("m");
/// let mut f = mb.function("main", vec![], None);
/// let p = f.malloc(Value::i64(32));
/// let slot = f.gep(p, Value::i32(2), 8);
/// f.store(Type::I64, Value::i64(9), slot);
/// let v = f.load(Type::I64, slot);
/// f.output(Type::I64, v);
/// f.ret(None);
/// f.finish();
/// let module = mb.finish()?;
///
/// let campaign = Campaign::new(&module, "main", &[], CampaignConfig::default())?;
/// let result = campaign.run(200, 42);
/// assert_eq!(result.n(), 200);
/// assert!(result.crash_rate() > 0.0, "address faults crash");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Campaign<'m> {
    module: &'m Module,
    entry: String,
    args: Vec<u64>,
    config: CampaignConfig,
    golden: Arc<RunResult>,
    sites: Arc<SiteTable>,
    /// The fault model whose injection points the campaign samples and
    /// whose lowering turns drawn specs into machine faults.
    model: Arc<dyn FaultModel>,
    /// Golden checkpoints in ascending `dyn_count` order (starting at 0),
    /// empty when checkpointing is off.
    ckpts: Arc<Vec<Snapshot>>,
}

/// The expensive byproducts of campaign preparation — the traced golden
/// run, the model's site table, and the replay checkpoints — detached from
/// the module borrow so they can outlive one request. Everything is behind
/// `Arc`: cloning is O(1), and [`Campaign::from_artifacts`] rebuilds a
/// ready campaign without re-executing the golden run. `epvf serve` caches
/// one of these per distinct `(module text, entry, args, fault model,
/// checkpoint interval)` request key; the caller is responsible for keying
/// the cache on everything the artifacts depend on.
#[derive(Debug, Clone)]
pub struct GoldenArtifacts {
    golden: Arc<RunResult>,
    sites: Arc<SiteTable>,
    ckpts: Arc<Vec<Snapshot>>,
    model_name: String,
}

impl GoldenArtifacts {
    /// The traced golden run.
    pub fn golden(&self) -> &RunResult {
        &self.golden
    }

    /// Canonical name of the fault model the site table was enumerated
    /// under.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }
}

impl<'m> Campaign<'m> {
    /// Execute the golden run (traced) and enumerate injection sites.
    ///
    /// # Errors
    /// [`CampaignError::Setup`] on interpreter misuse,
    /// [`CampaignError::GoldenFailed`] if the fault-free run does not
    /// complete, and [`CampaignError::NoInjectableSites`] for traces with
    /// no register reads.
    pub fn new(
        module: &'m Module,
        entry: &str,
        args: &[u64],
        config: CampaignConfig,
    ) -> Result<Self, CampaignError> {
        Self::with_model(
            module,
            entry,
            args,
            config,
            epvf_core::default_fault_model(),
        )
    }

    /// [`Self::new`] with an explicit [`FaultModel`]: sites are enumerated
    /// by the model and every drawn spec is lowered through it before
    /// execution. `new` is exactly `with_model(..,` [`default_fault_model`](epvf_core::default_fault_model)`())`.
    pub fn with_model(
        module: &'m Module,
        entry: &str,
        args: &[u64],
        config: CampaignConfig,
        model: Arc<dyn FaultModel>,
    ) -> Result<Self, CampaignError> {
        let interp = Interpreter::new(module, config.exec);
        let golden = interp.golden_run(entry, args)?;
        if golden.outcome != Outcome::Completed {
            return Err(CampaignError::GoldenFailed(golden.outcome));
        }
        let Some(trace) = golden.trace.as_ref() else {
            return Err(CampaignError::Internal(
                "golden run completed but produced no trace".to_string(),
            ));
        };
        let sites = SiteTable::for_model(&*model, module, trace);
        if sites.is_empty() {
            return Err(CampaignError::NoInjectableSites);
        }
        // Collect replay checkpoints in a second, untraced golden pass
        // (execution is identical with tracing off; only the trace artifact
        // differs). The first checkpoint lands at dynamic index 0, so every
        // injection point has a preceding checkpoint to resume from.
        let ckpts = if config.ckpt_interval == CampaignConfig::CKPT_OFF {
            Vec::new()
        } else {
            let interval = if config.ckpt_interval == CampaignConfig::CKPT_AUTO {
                (golden.dyn_insts / 64).max(1024)
            } else {
                config.ckpt_interval
            };
            let mut exec = config.exec;
            exec.record_trace = false;
            let (rerun, ckpts) = Interpreter::new(module, exec)
                .run_with_checkpoints(entry, args, interval)
                .map_err(|e| {
                    CampaignError::Internal(format!(
                        "checkpoint pass failed after a successful golden run: {e}"
                    ))
                })?;
            if rerun.dyn_insts != golden.dyn_insts || rerun.outputs != golden.outputs {
                return Err(CampaignError::Internal(
                    "checkpoint pass diverged from the traced golden run".to_string(),
                ));
            }
            ckpts
        };
        Ok(Campaign {
            module,
            entry: entry.to_string(),
            args: args.to_vec(),
            config,
            golden: Arc::new(golden),
            sites: Arc::new(sites),
            model,
            ckpts: Arc::new(ckpts),
        })
    }

    /// Detach this campaign's golden-run artifacts for reuse (O(1): all
    /// parts are `Arc`-shared with the campaign).
    pub fn artifacts(&self) -> GoldenArtifacts {
        GoldenArtifacts {
            golden: Arc::clone(&self.golden),
            sites: Arc::clone(&self.sites),
            ckpts: Arc::clone(&self.ckpts),
            model_name: self.model.name(),
        }
    }

    /// Rebuild a ready campaign from cached [`GoldenArtifacts`] without
    /// re-executing the golden run or the checkpoint pass. The caller must
    /// present the same module/entry/args/model/checkpoint-interval the
    /// artifacts were produced under (the serve cache keys on exactly
    /// that); the model name is re-checked here as a guard.
    ///
    /// # Errors
    /// [`CampaignError::Internal`] if `model` disagrees with the model the
    /// artifacts were enumerated under.
    pub fn from_artifacts(
        module: &'m Module,
        entry: &str,
        args: &[u64],
        config: CampaignConfig,
        model: Arc<dyn FaultModel>,
        artifacts: GoldenArtifacts,
    ) -> Result<Self, CampaignError> {
        if model.name() != artifacts.model_name {
            return Err(CampaignError::Internal(format!(
                "cached artifacts were enumerated under model {} but the request asks for {}",
                artifacts.model_name,
                model.name()
            )));
        }
        Ok(Campaign {
            module,
            entry: entry.to_string(),
            args: args.to_vec(),
            config,
            golden: artifacts.golden,
            sites: artifacts.sites,
            model,
            ckpts: artifacts.ckpts,
        })
    }

    /// The active fault model.
    pub fn model(&self) -> &dyn FaultModel {
        &*self.model
    }

    /// The golden (fault-free) run, including its trace.
    pub fn golden(&self) -> &RunResult {
        &self.golden
    }

    /// The module under test.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Entry function the campaign injects into.
    pub fn entry(&self) -> &str {
        &self.entry
    }

    /// Entry-function arguments.
    pub fn args(&self) -> &[u64] {
        &self.args
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The injectable-site table.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Number of replay checkpoints collected (0 when checkpointing is off).
    pub fn n_checkpoints(&self) -> usize {
        self.ckpts.len()
    }

    /// Interpreter configuration for injected runs: trace off, hang budget
    /// scaled from the golden run.
    fn injected_exec(&self) -> ExecConfig {
        ExecConfig {
            record_trace: false,
            max_dyn_insts: self
                .golden
                .dyn_insts
                .saturating_mul(self.config.hang_multiplier)
                .saturating_add(10_000),
            // Supervision watchdogs apply to injected runs only; the
            // golden run executes un-fuel-limited (it must complete for
            // the campaign to exist at all).
            fuel: self.config.run_fuel,
            deadline: self.config.run_deadline,
            poison_at: self.config.poison_at,
            ..self.config.exec
        }
    }

    /// Execute one injected run and classify it.
    ///
    /// With checkpointing on, the run resumes from the nearest golden
    /// checkpoint at or before the injection point (skipping the prefix),
    /// and ends early as `Benign` if its state rejoins a later golden
    /// checkpoint — the deterministic suffix is then bit-identical to the
    /// golden run, so the outputs must match. Both paths classify every
    /// spec identically; checkpointing only changes how much is executed.
    pub fn run_spec(&self, spec: InjectionSpec) -> InjOutcome {
        let outcome = self
            .try_run_spec(spec)
            .unwrap_or_else(|e| panic!("injected run failed to start: {e}"));
        epvf_telemetry::add(Ctr::CampaignRunsTotal, 1);
        epvf_telemetry::add(outcome.counter(), 1);
        outcome
    }

    /// Uncounted, fallible core of [`Self::run_spec`]: executes and
    /// classifies one spec without touching the campaign outcome counters
    /// (the caller records exactly one `runs_total` + class pair), and
    /// reports interpreter setup failures — impossible after a successful
    /// golden run, short of an internal bug — as an error instead of
    /// panicking.
    pub(crate) fn try_run_spec(&self, spec: InjectionSpec) -> Result<InjOutcome, ExecError> {
        let interp = Interpreter::new(self.module, self.injected_exec());
        // Lower the abstract spec through the active model. The width lookup
        // can only miss for specs outside the enumerated universe (e.g. a
        // stale WAL); 64 keeps the lowering total rather than panicking.
        let width = self
            .sites
            .width_of(spec.dyn_idx, spec.operand_slot)
            .unwrap_or(64);
        let fault = self.model.lower(spec, width);
        let idx = self
            .ckpts
            .partition_point(|s| s.dyn_count() <= spec.dyn_idx);
        if idx == 0 {
            // Checkpointing off (or no usable checkpoint): from scratch.
            epvf_telemetry::add(Ctr::CampaignScratchRuns, 1);
            let res = interp.run_fault(&self.entry, &self.args, fault)?;
            Ok(self.classify(&res))
        } else {
            epvf_telemetry::add(Ctr::CampaignResumedRuns, 1);
            let base = &self.ckpts[idx - 1];
            match interp.replay_fault_from(base, fault, &self.ckpts[idx..]) {
                ReplayOutcome::Finished(res) => Ok(self.classify(&res)),
                ReplayOutcome::Rejoined { .. } => {
                    epvf_telemetry::add(Ctr::CampaignEarlyBenign, 1);
                    Ok(InjOutcome::Benign)
                }
            }
        }
    }

    /// Classify a finished run against the golden output.
    pub fn classify(&self, res: &RunResult) -> InjOutcome {
        match res.outcome {
            Outcome::Crashed { kind, .. } => InjOutcome::Crash(kind),
            Outcome::Hang => InjOutcome::Hang,
            Outcome::Detected => InjOutcome::Detected,
            Outcome::TimedOut(kind) => InjOutcome::TimedOut(kind),
            Outcome::Completed => {
                let matches = match self.config.compare {
                    OutputCompare::Printed => res.outputs_match_printed(&self.golden),
                    OutputCompare::Exact => res.outputs == self.golden.outputs,
                };
                if matches {
                    InjOutcome::Benign
                } else {
                    InjOutcome::Sdc
                }
            }
        }
    }

    /// Draw the `n` specs that [`Self::run`] with the same `seed` would
    /// execute, without running them. `epvf inject --wal/--resume` uses
    /// this to fingerprint the campaign and diff a recovered WAL against
    /// the full spec list.
    pub fn draw_specs(&self, n: usize, seed: u64) -> Vec<InjectionSpec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sites.sample(&mut rng)).collect()
    }

    /// Run `n` injections with specs drawn from `seed`.
    pub fn run(&self, n: usize, seed: u64) -> CampaignResult {
        self.run_specs(&self.draw_specs(n, seed))
    }

    /// Run an explicit list of injection specs (used by the precision study
    /// and the §V protection evaluation).
    ///
    /// Specs are *dispatched* in ascending injection order — consecutive
    /// specs then resume from the same checkpoint epoch, maximizing reuse of
    /// shared memory pages — and handed to workers one at a time off a
    /// shared atomic cursor (work stealing), so a worker that draws cheap
    /// early-crashing runs takes more of them instead of idling. Results are
    /// scattered back into the input order, so a [`CampaignResult`] is
    /// byte-identical regardless of thread count.
    pub fn run_specs(&self, specs: &[InjectionSpec]) -> CampaignResult {
        self.run_specs_session(specs, &crate::RunSession::default())
    }

    /// [`Self::run_specs`] with persistence/resume state: outcomes already
    /// recovered from a WAL are prefilled instead of re-executed, and
    /// fresh completions are appended to the session's WAL sink (if any).
    /// Every run executes under panic isolation — a panicking run is
    /// retried per `config.retries` and then quarantined, never allowed to
    /// tear down the campaign.
    pub fn run_specs_session(
        &self,
        specs: &[InjectionSpec],
        session: &crate::RunSession<'_>,
    ) -> CampaignResult {
        let _span = epvf_telemetry::span(Tmr::CampaignRun);
        let threads = self.config.threads.max(1);
        let mut outcomes: Vec<Option<InjOutcome>> = vec![None; specs.len()];
        let mut quarantines: Vec<QuarantineRecord> = Vec::new();
        for (&i, &o) in &session.recovered {
            if let Some(slot) = outcomes.get_mut(i) {
                *slot = Some(o);
            }
        }
        // Dispatch only the unrecovered specs, in ascending injection
        // order (see the method docs on why).
        let mut order: Vec<usize> = (0..specs.len())
            .filter(|&i| outcomes[i].is_none())
            .collect();
        order.sort_by_key(|&i| (specs[i].dyn_idx, i));
        let label = format!("inject {}", self.entry);
        let progress = if session.quiet {
            Progress::off(&label, order.len() as u64)
        } else {
            Progress::new(&label, order.len() as u64)
        };
        if threads == 1 || order.len() < 32 {
            for (done, &i) in order.iter().enumerate() {
                let (o, q) = self.run_spec_supervised(i, specs[i]);
                if let Some(sink) = session.wal {
                    sink.append(session.global_index(i), specs[i], o);
                }
                outcomes[i] = Some(o);
                quarantines.extend(q);
                progress.tick(done as u64 + 1);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let order = &order;
            let cursor = &cursor;
            let done = &done;
            let progress = &progress;
            let locals: Vec<Vec<(usize, InjOutcome, Option<QuarantineRecord>)>> =
                crossbeam::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            scope.spawn(move |_| {
                                epvf_telemetry::add(Ctr::CampaignWorkerBatches, 1);
                                let mut local = Vec::new();
                                loop {
                                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                                    let Some(&i) = order.get(k) else { break };
                                    let (o, q) = self.run_spec_supervised(i, specs[i]);
                                    if let Some(sink) = session.wal {
                                        sink.append(session.global_index(i), specs[i], o);
                                    }
                                    local.push((i, o, q));
                                    progress.tick(done.fetch_add(1, Ordering::Relaxed) as u64 + 1);
                                }
                                epvf_telemetry::add(Ctr::CampaignStealOps, local.len() as u64);
                                local
                            })
                        })
                        .collect();
                    // A worker whose join fails (it panicked outside the
                    // supervised region) loses its local results; the
                    // serial sweep below re-runs whatever it missed.
                    handles.into_iter().filter_map(|h| h.join().ok()).collect()
                })
                .unwrap_or_default();
            for (i, o, q) in locals.into_iter().flatten() {
                outcomes[i] = Some(o);
                quarantines.extend(q);
            }
            for &i in order.iter() {
                if outcomes[i].is_none() {
                    let (o, q) = self.run_spec_supervised(i, specs[i]);
                    if let Some(sink) = session.wal {
                        sink.append(session.global_index(i), specs[i], o);
                    }
                    outcomes[i] = Some(o);
                    quarantines.extend(q);
                }
            }
        }
        if let Some(sink) = session.wal {
            sink.flush();
        }
        progress.finish();
        quarantines.sort_by_key(|q| q.index);
        let runs = specs
            .iter()
            .zip(outcomes)
            .map(|(s, o)| {
                (
                    *s,
                    o.expect("every spec recovered, dispatched, or re-run above"),
                )
            })
            .collect();
        CampaignResult { runs, quarantines }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_ir::{IcmpPred, ModuleBuilder, Type, Value};

    /// Memory-heavy kernel so that crashes dominate, as in the paper.
    fn kernel_module() -> Module {
        let mut mb = ModuleBuilder::new("k");
        let mut f = mb.function("main", vec![Type::I32], None);
        let n = f.param(0);
        let bytes = f.zext(Type::I32, Type::I64, n);
        let size = f.mul(Type::I64, bytes, Value::i64(4));
        let arr = f.malloc(size);
        let entry = f.current_block();
        let header = f.create_block("h");
        let body = f.create_block("b");
        let exit = f.create_block("e");
        f.br(header);
        f.switch_to(header);
        let i = f.phi(Type::I32, vec![(entry, Value::i32(0))]);
        let c = f.icmp(IcmpPred::Slt, Type::I32, i, n);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let v = f.mul(Type::I32, i, Value::i32(3));
        let slot = f.gep(arr, i, 4);
        f.store(Type::I32, v, slot);
        let lv = f.load(Type::I32, slot);
        f.output(Type::I32, lv);
        let i2 = f.add(Type::I32, i, Value::i32(1));
        f.add_incoming(i, body, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish().expect("verifies")
    }

    #[test]
    fn outcomes_cover_crash_sdc_benign() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let res = campaign.run(400, 11);
        assert_eq!(res.n(), 400);
        assert!(res.crash_rate() > 0.2, "crash rate {}", res.crash_rate());
        assert!(res.sdc_rate() > 0.0, "sdc rate {}", res.sdc_rate());
        assert!(res.benign_rate() > 0.0, "benign rate {}", res.benign_rate());
        let total = res.crash_rate()
            + res.sdc_rate()
            + res.benign_rate()
            + res.hang_rate()
            + res.detected_rate();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn segfaults_dominate_crash_classes() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let res = campaign.run(400, 5);
        let [sf, _a, _mma, _ae] = res.crash_kind_fractions();
        assert!(sf > 0.5, "SF fraction {sf} should dominate (paper: ≥96%)");
    }

    #[test]
    fn campaign_deterministic_per_seed_and_thread_count() {
        let m = kernel_module();
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let c1 = Campaign::new(&m, "main", &[16], cfg).expect("golden");
        let serial = c1.run(100, 9);
        let cfg4 = CampaignConfig {
            threads: 4,
            ..CampaignConfig::default()
        };
        let c4 = Campaign::new(&m, "main", &[16], cfg4).expect("golden");
        let parallel = c4.run(100, 9);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn checkpoint_resume_matches_full_replay() {
        let m = kernel_module();
        let full_cfg = CampaignConfig {
            threads: 1,
            ckpt_interval: CampaignConfig::CKPT_OFF,
            ..CampaignConfig::default()
        };
        let full = Campaign::new(&m, "main", &[24], full_cfg).expect("golden");
        assert_eq!(full.n_checkpoints(), 0);
        // A tight interval so many checkpoints exist even on this small run.
        let ckpt_cfg = CampaignConfig {
            threads: 1,
            ckpt_interval: 16,
            ..CampaignConfig::default()
        };
        let ckpt = Campaign::new(&m, "main", &[24], ckpt_cfg).expect("golden");
        assert!(ckpt.n_checkpoints() > 4);
        assert_eq!(full.run(300, 7), ckpt.run(300, 7));
    }

    #[test]
    fn checkpointed_campaign_deterministic_across_thread_counts() {
        let m = kernel_module();
        let mk = |threads| {
            let cfg = CampaignConfig {
                threads,
                ckpt_interval: 32,
                ..CampaignConfig::default()
            };
            Campaign::new(&m, "main", &[24], cfg)
                .expect("golden")
                .run(120, 13)
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn ci_is_sane() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[16], CampaignConfig::default()).expect("golden");
        let res = campaign.run(200, 3);
        let (lo, hi) = res.crash_rate_ci95();
        let p = res.crash_rate();
        assert!(lo <= p && p <= hi);
        assert!(hi - lo < 0.2, "CI reasonably tight at n=200");
    }
}
