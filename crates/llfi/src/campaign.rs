//! Fault-injection campaigns (paper §IV-A).
//!
//! One fault per run, ≥ thousands of runs per benchmark, outcomes classified
//! against the golden run into the paper's taxonomy (Fig. 5 / Table II).
//! Runs are embarrassingly parallel; specs are pre-drawn serially from the
//! seed so results are independent of thread count.

use crate::site::SiteTable;
use crate::stats::ci95;
use epvf_interp::{
    CrashKind, ExecConfig, ExecError, InjectionSpec, Interpreter, Outcome, ReplayOutcome,
    RunResult, Snapshot,
};
use epvf_ir::Module;
use epvf_telemetry::{Ctr, Progress, Tmr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Classified result of one injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjOutcome {
    /// Completed with golden-identical output.
    Benign,
    /// Completed with corrupted output — silent data corruption.
    Sdc,
    /// Hardware exception of the given class.
    Crash(CrashKind),
    /// Exceeded the dynamic-instruction budget.
    Hang,
    /// A §V duplication detector fired.
    Detected,
}

impl InjOutcome {
    /// Whether the run crashed (any exception class).
    pub fn is_crash(self) -> bool {
        matches!(self, InjOutcome::Crash(_))
    }

    /// The outcome-class counter this classification lands in. The five
    /// classes partition `llfi.campaign.runs_total` — the conservation law
    /// `epvf metrics-check` enforces.
    fn counter(self) -> Ctr {
        match self {
            InjOutcome::Benign => Ctr::CampaignRunsBenign,
            InjOutcome::Sdc => Ctr::CampaignRunsSdc,
            InjOutcome::Crash(_) => Ctr::CampaignRunsCrash,
            InjOutcome::Hang => Ctr::CampaignRunsHang,
            InjOutcome::Detected => Ctr::CampaignRunsDetected,
        }
    }
}

/// How completed-run outputs are compared against the golden run when
/// classifying SDC vs benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OutputCompare {
    /// Compare the printed form (floats at six significant digits) — what
    /// the paper's toolchain effectively does: Rodinia prints results with
    /// limited precision and LLFI diffs the output files.
    #[default]
    Printed,
    /// Bit-exact comparison (strictest possible SDC definition).
    Exact,
}

/// Campaign options.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Interpreter/memory configuration for the injected runs.
    pub exec: ExecConfig,
    /// Hang threshold as a multiple of the golden dynamic-instruction count.
    pub hang_multiplier: u64,
    /// Worker threads (1 = fully serial).
    pub threads: usize,
    /// SDC comparison semantics.
    pub compare: OutputCompare,
    /// Checkpoint spacing in dynamic instructions for the replay engine:
    /// injected runs resume from the nearest checkpoint at or before their
    /// injection point instead of re-executing the prefix.
    /// [`Self::CKPT_AUTO`] (the default) picks ~64 evenly spaced
    /// checkpoints; [`Self::CKPT_OFF`] disables checkpointing and restores
    /// full from-scratch replays.
    pub ckpt_interval: u64,
}

impl CampaignConfig {
    /// `ckpt_interval` value selecting an automatic spacing:
    /// `max(golden_dyn_insts / 64, 1024)`.
    pub const CKPT_AUTO: u64 = u64::MAX;
    /// `ckpt_interval` value disabling checkpoint-resume entirely.
    pub const CKPT_OFF: u64 = 0;
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            exec: ExecConfig::default(),
            hang_multiplier: 10,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            compare: OutputCompare::default(),
            ckpt_interval: CampaignConfig::CKPT_AUTO,
        }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-run `(spec, outcome)` pairs, in draw order.
    pub runs: Vec<(InjectionSpec, InjOutcome)>,
}

impl CampaignResult {
    /// Total runs.
    pub fn n(&self) -> usize {
        self.runs.len()
    }

    /// Count of a specific outcome class.
    pub fn count(&self, pred: impl Fn(InjOutcome) -> bool) -> usize {
        self.runs.iter().filter(|(_, o)| pred(*o)).count()
    }

    /// Fraction of crashes (all classes).
    pub fn crash_rate(&self) -> f64 {
        self.count(InjOutcome::is_crash) as f64 / self.n().max(1) as f64
    }

    /// Fraction of SDCs.
    pub fn sdc_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Sdc) as f64 / self.n().max(1) as f64
    }

    /// Fraction of benign runs.
    pub fn benign_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Benign) as f64 / self.n().max(1) as f64
    }

    /// Fraction of hangs.
    pub fn hang_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Hang) as f64 / self.n().max(1) as f64
    }

    /// Fraction of detected (duplication-protected) runs.
    pub fn detected_rate(&self) -> f64 {
        self.count(|o| o == InjOutcome::Detected) as f64 / self.n().max(1) as f64
    }

    /// Crash-class counts in the paper's Table II column order
    /// `[SF, A, MMA, AE]`.
    pub fn crash_kind_counts(&self) -> [usize; 4] {
        let mut out = [0usize; 4];
        for (_, o) in &self.runs {
            if let InjOutcome::Crash(k) = o {
                let i = CrashKind::all()
                    .iter()
                    .position(|x| x == k)
                    .expect("all kinds covered");
                out[i] += 1;
            }
        }
        out
    }

    /// Relative crash-class frequencies (Table II rows); zeros if no crash.
    pub fn crash_kind_fractions(&self) -> [f64; 4] {
        let counts = self.crash_kind_counts();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        counts.map(|c| c as f64 / total as f64)
    }

    /// 95% confidence interval of the crash rate.
    pub fn crash_rate_ci95(&self) -> (f64, f64) {
        ci95(self.count(InjOutcome::is_crash), self.n())
    }

    /// 95% confidence interval of the SDC rate.
    pub fn sdc_rate_ci95(&self) -> (f64, f64) {
        ci95(self.count(|o| o == InjOutcome::Sdc), self.n())
    }
}

/// Why a campaign could not be prepared.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// Interpreter setup failed (unknown entry, arity mismatch).
    Setup(ExecError),
    /// The golden run did not complete — a campaign needs fault-free
    /// reference outputs.
    GoldenFailed(Outcome),
    /// The golden trace contains no injectable register reads.
    NoInjectableSites,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Setup(e) => write!(f, "campaign setup: {e}"),
            CampaignError::GoldenFailed(o) => {
                write!(f, "golden run must complete, but it ended with {o}")
            }
            CampaignError::NoInjectableSites => {
                write!(f, "the trace contains no register reads to inject into")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Setup(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for CampaignError {
    fn from(e: ExecError) -> Self {
        CampaignError::Setup(e)
    }
}

/// A prepared fault-injection campaign over one program + input.
///
/// # Examples
///
/// ```
/// use epvf_llfi::{Campaign, CampaignConfig};
/// use epvf_ir::{ModuleBuilder, Type, Value};
///
/// let mut mb = ModuleBuilder::new("m");
/// let mut f = mb.function("main", vec![], None);
/// let p = f.malloc(Value::i64(32));
/// let slot = f.gep(p, Value::i32(2), 8);
/// f.store(Type::I64, Value::i64(9), slot);
/// let v = f.load(Type::I64, slot);
/// f.output(Type::I64, v);
/// f.ret(None);
/// f.finish();
/// let module = mb.finish()?;
///
/// let campaign = Campaign::new(&module, "main", &[], CampaignConfig::default())?;
/// let result = campaign.run(200, 42);
/// assert_eq!(result.n(), 200);
/// assert!(result.crash_rate() > 0.0, "address faults crash");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Campaign<'m> {
    module: &'m Module,
    entry: String,
    args: Vec<u64>,
    config: CampaignConfig,
    golden: RunResult,
    sites: SiteTable,
    /// Golden checkpoints in ascending `dyn_count` order (starting at 0),
    /// empty when checkpointing is off.
    ckpts: Vec<Snapshot>,
}

impl<'m> Campaign<'m> {
    /// Execute the golden run (traced) and enumerate injection sites.
    ///
    /// # Errors
    /// [`CampaignError::Setup`] on interpreter misuse,
    /// [`CampaignError::GoldenFailed`] if the fault-free run does not
    /// complete, and [`CampaignError::NoInjectableSites`] for traces with
    /// no register reads.
    pub fn new(
        module: &'m Module,
        entry: &str,
        args: &[u64],
        config: CampaignConfig,
    ) -> Result<Self, CampaignError> {
        let interp = Interpreter::new(module, config.exec);
        let golden = interp.golden_run(entry, args)?;
        if golden.outcome != Outcome::Completed {
            return Err(CampaignError::GoldenFailed(golden.outcome));
        }
        let sites = SiteTable::from_trace(module, golden.trace.as_ref().expect("traced"));
        if sites.is_empty() {
            return Err(CampaignError::NoInjectableSites);
        }
        // Collect replay checkpoints in a second, untraced golden pass
        // (execution is identical with tracing off; only the trace artifact
        // differs). The first checkpoint lands at dynamic index 0, so every
        // injection point has a preceding checkpoint to resume from.
        let ckpts = if config.ckpt_interval == CampaignConfig::CKPT_OFF {
            Vec::new()
        } else {
            let interval = if config.ckpt_interval == CampaignConfig::CKPT_AUTO {
                (golden.dyn_insts / 64).max(1024)
            } else {
                config.ckpt_interval
            };
            let mut exec = config.exec;
            exec.record_trace = false;
            let (rerun, ckpts) = Interpreter::new(module, exec)
                .run_with_checkpoints(entry, args, interval)
                .expect("entry validated by the golden run");
            debug_assert_eq!(rerun.dyn_insts, golden.dyn_insts);
            debug_assert_eq!(rerun.outputs, golden.outputs);
            ckpts
        };
        Ok(Campaign {
            module,
            entry: entry.to_string(),
            args: args.to_vec(),
            config,
            golden,
            sites,
            ckpts,
        })
    }

    /// The golden (fault-free) run, including its trace.
    pub fn golden(&self) -> &RunResult {
        &self.golden
    }

    /// The module under test.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The injectable-site table.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Number of replay checkpoints collected (0 when checkpointing is off).
    pub fn n_checkpoints(&self) -> usize {
        self.ckpts.len()
    }

    /// Interpreter configuration for injected runs: trace off, hang budget
    /// scaled from the golden run.
    fn injected_exec(&self) -> ExecConfig {
        ExecConfig {
            record_trace: false,
            max_dyn_insts: self
                .golden
                .dyn_insts
                .saturating_mul(self.config.hang_multiplier)
                .saturating_add(10_000),
            ..self.config.exec
        }
    }

    /// Execute one injected run and classify it.
    ///
    /// With checkpointing on, the run resumes from the nearest golden
    /// checkpoint at or before the injection point (skipping the prefix),
    /// and ends early as `Benign` if its state rejoins a later golden
    /// checkpoint — the deterministic suffix is then bit-identical to the
    /// golden run, so the outputs must match. Both paths classify every
    /// spec identically; checkpointing only changes how much is executed.
    pub fn run_spec(&self, spec: InjectionSpec) -> InjOutcome {
        let interp = Interpreter::new(self.module, self.injected_exec());
        let idx = self
            .ckpts
            .partition_point(|s| s.dyn_count() <= spec.dyn_idx);
        let outcome = if idx == 0 {
            // Checkpointing off (or no usable checkpoint): from scratch.
            epvf_telemetry::add(Ctr::CampaignScratchRuns, 1);
            let res = interp
                .run_injected(&self.entry, &self.args, spec)
                .expect("entry validated at construction");
            self.classify(&res)
        } else {
            epvf_telemetry::add(Ctr::CampaignResumedRuns, 1);
            let base = &self.ckpts[idx - 1];
            match interp.replay_injected_from(base, spec, &self.ckpts[idx..]) {
                ReplayOutcome::Finished(res) => self.classify(&res),
                ReplayOutcome::Rejoined { .. } => {
                    epvf_telemetry::add(Ctr::CampaignEarlyBenign, 1);
                    InjOutcome::Benign
                }
            }
        };
        epvf_telemetry::add(Ctr::CampaignRunsTotal, 1);
        epvf_telemetry::add(outcome.counter(), 1);
        outcome
    }

    /// Classify a finished run against the golden output.
    pub fn classify(&self, res: &RunResult) -> InjOutcome {
        match res.outcome {
            Outcome::Crashed { kind, .. } => InjOutcome::Crash(kind),
            Outcome::Hang => InjOutcome::Hang,
            Outcome::Detected => InjOutcome::Detected,
            Outcome::Completed => {
                let matches = match self.config.compare {
                    OutputCompare::Printed => res.outputs_match_printed(&self.golden),
                    OutputCompare::Exact => res.outputs == self.golden.outputs,
                };
                if matches {
                    InjOutcome::Benign
                } else {
                    InjOutcome::Sdc
                }
            }
        }
    }

    /// Run `n` injections with specs drawn from `seed`.
    pub fn run(&self, n: usize, seed: u64) -> CampaignResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let specs: Vec<InjectionSpec> = (0..n).map(|_| self.sites.sample(&mut rng)).collect();
        self.run_specs(&specs)
    }

    /// Run an explicit list of injection specs (used by the precision study
    /// and the §V protection evaluation).
    ///
    /// Specs are *dispatched* in ascending injection order — consecutive
    /// specs then resume from the same checkpoint epoch, maximizing reuse of
    /// shared memory pages — and handed to workers one at a time off a
    /// shared atomic cursor (work stealing), so a worker that draws cheap
    /// early-crashing runs takes more of them instead of idling. Results are
    /// scattered back into the input order, so a [`CampaignResult`] is
    /// byte-identical regardless of thread count.
    pub fn run_specs(&self, specs: &[InjectionSpec]) -> CampaignResult {
        let _span = epvf_telemetry::span(Tmr::CampaignRun);
        let progress = Progress::new(&format!("inject {}", self.entry), specs.len() as u64);
        let threads = self.config.threads.max(1);
        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by_key(|&i| (specs[i].dyn_idx, i));
        let mut outcomes: Vec<Option<InjOutcome>> = vec![None; specs.len()];
        if threads == 1 || specs.len() < 32 {
            for (done, &i) in order.iter().enumerate() {
                outcomes[i] = Some(self.run_spec(specs[i]));
                progress.tick(done as u64 + 1);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let order = &order;
            let cursor = &cursor;
            let done = &done;
            let progress = &progress;
            let locals: Vec<Vec<(usize, InjOutcome)>> = crossbeam::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move |_| {
                            epvf_telemetry::add(Ctr::CampaignWorkerBatches, 1);
                            let mut local = Vec::new();
                            loop {
                                let k = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&i) = order.get(k) else { break };
                                local.push((i, self.run_spec(specs[i])));
                                progress.tick(done.fetch_add(1, Ordering::Relaxed) as u64 + 1);
                            }
                            epvf_telemetry::add(Ctr::CampaignStealOps, local.len() as u64);
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            })
            .expect("campaign scope failed");
            for (i, o) in locals.into_iter().flatten() {
                outcomes[i] = Some(o);
            }
        }
        progress.finish();
        let runs = specs
            .iter()
            .zip(outcomes)
            .map(|(s, o)| (*s, o.expect("all specs processed")))
            .collect();
        CampaignResult { runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_ir::{IcmpPred, ModuleBuilder, Type, Value};

    /// Memory-heavy kernel so that crashes dominate, as in the paper.
    fn kernel_module() -> Module {
        let mut mb = ModuleBuilder::new("k");
        let mut f = mb.function("main", vec![Type::I32], None);
        let n = f.param(0);
        let bytes = f.zext(Type::I32, Type::I64, n);
        let size = f.mul(Type::I64, bytes, Value::i64(4));
        let arr = f.malloc(size);
        let entry = f.current_block();
        let header = f.create_block("h");
        let body = f.create_block("b");
        let exit = f.create_block("e");
        f.br(header);
        f.switch_to(header);
        let i = f.phi(Type::I32, vec![(entry, Value::i32(0))]);
        let c = f.icmp(IcmpPred::Slt, Type::I32, i, n);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let v = f.mul(Type::I32, i, Value::i32(3));
        let slot = f.gep(arr, i, 4);
        f.store(Type::I32, v, slot);
        let lv = f.load(Type::I32, slot);
        f.output(Type::I32, lv);
        let i2 = f.add(Type::I32, i, Value::i32(1));
        f.add_incoming(i, body, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish().expect("verifies")
    }

    #[test]
    fn outcomes_cover_crash_sdc_benign() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let res = campaign.run(400, 11);
        assert_eq!(res.n(), 400);
        assert!(res.crash_rate() > 0.2, "crash rate {}", res.crash_rate());
        assert!(res.sdc_rate() > 0.0, "sdc rate {}", res.sdc_rate());
        assert!(res.benign_rate() > 0.0, "benign rate {}", res.benign_rate());
        let total = res.crash_rate()
            + res.sdc_rate()
            + res.benign_rate()
            + res.hang_rate()
            + res.detected_rate();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn segfaults_dominate_crash_classes() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let res = campaign.run(400, 5);
        let [sf, _a, _mma, _ae] = res.crash_kind_fractions();
        assert!(sf > 0.5, "SF fraction {sf} should dominate (paper: ≥96%)");
    }

    #[test]
    fn campaign_deterministic_per_seed_and_thread_count() {
        let m = kernel_module();
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let c1 = Campaign::new(&m, "main", &[16], cfg).expect("golden");
        let serial = c1.run(100, 9);
        let cfg4 = CampaignConfig {
            threads: 4,
            ..CampaignConfig::default()
        };
        let c4 = Campaign::new(&m, "main", &[16], cfg4).expect("golden");
        let parallel = c4.run(100, 9);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn checkpoint_resume_matches_full_replay() {
        let m = kernel_module();
        let full_cfg = CampaignConfig {
            threads: 1,
            ckpt_interval: CampaignConfig::CKPT_OFF,
            ..CampaignConfig::default()
        };
        let full = Campaign::new(&m, "main", &[24], full_cfg).expect("golden");
        assert_eq!(full.n_checkpoints(), 0);
        // A tight interval so many checkpoints exist even on this small run.
        let ckpt_cfg = CampaignConfig {
            threads: 1,
            ckpt_interval: 16,
            ..CampaignConfig::default()
        };
        let ckpt = Campaign::new(&m, "main", &[24], ckpt_cfg).expect("golden");
        assert!(ckpt.n_checkpoints() > 4);
        assert_eq!(full.run(300, 7), ckpt.run(300, 7));
    }

    #[test]
    fn checkpointed_campaign_deterministic_across_thread_counts() {
        let m = kernel_module();
        let mk = |threads| {
            let cfg = CampaignConfig {
                threads,
                ckpt_interval: 32,
                ..CampaignConfig::default()
            };
            Campaign::new(&m, "main", &[24], cfg)
                .expect("golden")
                .run(120, 13)
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn ci_is_sane() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[16], CampaignConfig::default()).expect("golden");
        let res = campaign.run(200, 3);
        let (lo, hi) = res.crash_rate_ci95();
        let p = res.crash_rate();
        assert!(lo <= p && p <= hi);
        assert!(hi - lo < 0.2, "CI reasonably tight at n=200");
    }
}
