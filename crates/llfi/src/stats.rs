//! Small statistics helpers: binomial-proportion confidence intervals for
//! the rates the paper reports with error bars (Figs. 5, 8, 9, 13), in two
//! flavors — the Wilson score interval (good coverage, cheap) and the
//! exact Clopper-Pearson interval (conservative: guaranteed ≥95% coverage,
//! inverted from the binomial tails themselves). The adaptive campaign
//! sampler reports both so downstream comparisons can pick their risk
//! posture; its within-CI calibration checks use Clopper-Pearson.

/// `Φ⁻¹(0.975)` — the z-score behind every 95% interval in this crate.
pub(crate) const Z95: f64 = 1.959_963_985;

/// Wilson score interval at 95% confidence for `successes / n`.
///
/// Returns `(0.0, 1.0)` when `n == 0`. Preferred over the normal
/// approximation because campaign proportions can sit near 0 or 1.
pub fn ci95(successes: usize, n: usize) -> (f64, f64) {
    wilson95_f(successes as f64, n as f64)
}

/// Wilson score interval over *effective* (possibly fractional) counts —
/// the form the stratified estimator needs, where `n` is a Kish effective
/// sample size rather than an integer run count. `ci95` is the integer
/// wrapper around this.
pub fn wilson95_f(successes: f64, n: f64) -> (f64, f64) {
    if n <= 0.0 {
        return (0.0, 1.0);
    }
    let p = (successes / n).clamp(0.0, 1.0);
    let z2 = Z95 * Z95;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (Z95 / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Exact Clopper-Pearson interval at 95% confidence for `successes / n`.
///
/// The lower bound is the `p` at which `P[X ≥ s] = α/2` and the upper the
/// `p` at which `P[X ≤ s] = α/2` (for `X ~ Binomial(n, p)`), i.e. the
/// Beta-quantile form `(BetaInv(α/2; s, n−s+1), BetaInv(1−α/2; s+1, n−s))`
/// with the conventional edge cases: lower bound 0 when `s = 0`, upper
/// bound 1 when `s = n`. Returns `(0.0, 1.0)` when `n == 0`. Guaranteed-
/// coverage (conservative), so a "truth within CI" assertion that uses it
/// never fails spuriously for want of interval width.
pub fn clopper_pearson95(successes: usize, n: usize) -> (f64, f64) {
    clopper_pearson_f(successes as f64, n as f64)
}

/// [`clopper_pearson95`] over effective fractional counts (`successes`
/// clamped into `[0, n]`), for the stratified estimator's reports.
pub fn clopper_pearson_f(successes: f64, n: f64) -> (f64, f64) {
    const ALPHA_2: f64 = 0.025;
    if n <= 0.0 {
        return (0.0, 1.0);
    }
    let s = successes.clamp(0.0, n);
    let lo = if s <= 0.0 {
        0.0
    } else {
        beta_inv(ALPHA_2, s, n - s + 1.0)
    };
    let hi = if s >= n {
        1.0
    } else {
        beta_inv(1.0 - ALPHA_2, s + 1.0, n - s)
    };
    (lo, hi)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued-fraction expansion (Numerical Recipes §6.4), with the
/// symmetry transform applied when `x` is past the distribution's bulk so
/// the fraction converges quickly.
fn beta_reg(x: f64, a: f64, b: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    // ln B(a,b) via ln Γ; the prefactor x^a (1-x)^b / B(a,b). The symmetry
    // transform is applied inline (not by recursing) so an `x` exactly on
    // the branch threshold cannot ping-pong between the two forms.
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_cf(x, a, b)
    } else {
        1.0 - (ln_front.exp() / b) * beta_cf(1.0 - x, b, a)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// `ln Γ(x)` (Lanczos, g=7, 9 coefficients; |error| < 1e-13 for x > 0).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Inverse of [`beta_reg`] in `x` by bisection — monotone, bounded, and
/// called a handful of times per campaign, so robustness beats speed.
fn beta_inv(p: f64, a: f64, b: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if beta_reg(mid, a, b) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean (the aggregate the paper uses for Fig. 13 SDC rates).
/// Zero and negative entries are clamped to a small epsilon.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = ci95(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.22);
        // More samples → tighter interval.
        let (lo2, hi2) = ci95(500, 1000);
        assert!(hi2 - lo2 < hi - lo);
    }

    #[test]
    fn wilson_extremes_stay_in_unit_interval() {
        let (lo, hi) = ci95(0, 50);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo, hi) = ci95(50, 50);
        assert!(lo > 0.85 && lo < 1.0);
        assert_eq!(hi, 1.0);
        assert_eq!(ci95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn clopper_pearson_edges_and_containment() {
        assert_eq!(clopper_pearson95(0, 0), (0.0, 1.0));
        let (lo, hi) = clopper_pearson95(0, 20);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.2);
        let (lo, hi) = clopper_pearson95(20, 20);
        assert!(lo > 0.8 && lo < 1.0);
        assert_eq!(hi, 1.0);
        // "Rule of three": upper bound at 0/n ≈ 3.69/n for the two-sided
        // 95% interval.
        let (_, hi) = clopper_pearson95(0, 100);
        assert!((hi - 0.0362).abs() < 0.002, "hi = {hi}");
    }

    #[test]
    fn beta_reg_matches_known_values() {
        // I_x(1, b) = 1 - (1-x)^b exactly.
        for &(x, b) in &[(0.1, 3.0), (0.5, 7.0), (0.9, 2.0)] {
            let want = 1.0 - (1.0_f64 - x).powf(b);
            assert!((beta_reg(x, 1.0, b) - want).abs() < 1e-10);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        let v = beta_reg(0.3, 4.0, 9.0);
        assert!((v - (1.0 - beta_reg(0.7, 9.0, 4.0))).abs() < 1e-10);
    }

    /// `P[X ≥ s]` for `X ~ Binomial(n, p)` by direct tail summation —
    /// the definition the exact interval must invert.
    fn binom_upper_tail(s: usize, n: usize, p: f64) -> f64 {
        let mut total = 0.0;
        for k in s..=n {
            // C(n, k) via ln Γ for numerical range.
            let ln_c = ln_gamma(n as f64 + 1.0)
                - ln_gamma(k as f64 + 1.0)
                - ln_gamma((n - k) as f64 + 1.0);
            let ln_term =
                ln_c + k as f64 * p.max(1e-300).ln() + (n - k) as f64 * (1.0 - p).max(1e-300).ln();
            total += ln_term.exp();
        }
        total.min(1.0)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The exact interval's defining property, checked against brute-
        /// force binomial tail sums: at the lower bound the upper tail
        /// `P[X ≥ s]` equals α/2; at the upper bound the lower tail
        /// `P[X ≤ s] = 1 − P[X ≥ s+1]` equals α/2.
        #[test]
        fn clopper_pearson_inverts_binomial_tails(n in 1usize..30, raw in 0usize..31) {
            let s = raw % (n + 1);
            let (lo, hi) = clopper_pearson95(s, n);
            if s > 0 {
                proptest::prop_assert!((binom_upper_tail(s, n, lo) - 0.025).abs() < 1e-6,
                    "lower bound tail off: n={} s={} lo={}", n, s, lo);
            }
            if s < n {
                let lower_tail = 1.0 - binom_upper_tail(s + 1, n, hi);
                proptest::prop_assert!((lower_tail - 0.025).abs() < 1e-6,
                    "upper bound tail off: n={} s={} hi={}", n, s, hi);
            }
        }

        /// Exact interval contains the point estimate and the Wilson
        /// interval's center; both intervals shrink with n; Clopper-Pearson
        /// is at least as wide as Wilson at the same counts (it is the
        /// conservative one).
        #[test]
        fn intervals_are_ordered_and_contain_the_estimate(n in 1usize..60, raw in 0usize..61) {
            let s = raw % (n + 1);
            let p = s as f64 / n as f64;
            let (wl, wh) = ci95(s, n);
            let (cl, ch) = clopper_pearson95(s, n);
            proptest::prop_assert!(wl <= p + 1e-12 && p <= wh + 1e-12);
            proptest::prop_assert!(cl <= p + 1e-12 && p <= ch + 1e-12);
            proptest::prop_assert!((0.0..=1.0).contains(&cl) && (0.0..=1.0).contains(&ch));
            proptest::prop_assert!(cl <= ch);
            // CP ⊇ Wilson up to a small numerical slack.
            proptest::prop_assert!(ch - cl >= (wh - wl) - 1e-9,
                "CP narrower than Wilson: n={} s={}", n, s);
            // Quadrupling n must not widen either interval.
            let (wl4, wh4) = ci95(4 * s, 4 * n);
            proptest::prop_assert!(wh4 - wl4 <= (wh - wl) + 1e-12);
        }

        /// Fractional-count forms agree with the integer forms on integers.
        #[test]
        fn fractional_forms_extend_integer_forms(n in 1usize..40, raw in 0usize..41) {
            let s = raw % (n + 1);
            let (a, b) = ci95(s, n);
            let (af, bf) = wilson95_f(s as f64, n as f64);
            proptest::prop_assert!((a - af).abs() < 1e-12 && (b - bf).abs() < 1e-12);
            let (c, d) = clopper_pearson95(s, n);
            let (cf, df) = clopper_pearson_f(s as f64, n as f64);
            proptest::prop_assert!((c - cf).abs() < 1e-12 && (d - df).abs() < 1e-12);
        }
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!(geomean(&[0.0, 1.0]) < 1e-5);
    }
}
