//! Small statistics helpers: Wilson 95% confidence intervals for the
//! proportions the paper reports with error bars (Figs. 5, 8, 9, 13).

/// Wilson score interval at 95% confidence for `successes / n`.
///
/// Returns `(0.0, 1.0)` when `n == 0`. Preferred over the normal
/// approximation because campaign proportions can sit near 0 or 1.
pub fn ci95(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985; // Φ⁻¹(0.975)
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n_f) + z2 / (4.0 * n_f * n_f)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean (the aggregate the paper uses for Fig. 13 SDC rates).
/// Zero and negative entries are clamped to a small epsilon.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (s / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = ci95(50, 100);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.22);
        // More samples → tighter interval.
        let (lo2, hi2) = ci95(500, 1000);
        assert!(hi2 - lo2 < hi - lo);
    }

    #[test]
    fn wilson_extremes_stay_in_unit_interval() {
        let (lo, hi) = ci95(0, 50);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
        let (lo, hi) = ci95(50, 50);
        assert!(lo > 0.85 && lo < 1.0);
        assert_eq!(hi, 1.0);
        assert_eq!(ci95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!(geomean(&[0.0, 1.0]) < 1e-5);
    }
}
