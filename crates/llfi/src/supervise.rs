//! Panic isolation for injection runs.
//!
//! A fault-injection campaign executes thousands of deliberately corrupted
//! runs; a bug anywhere in the interpreter (or a pathological corruption)
//! can panic. Without supervision one panic tears down the worker pool and
//! loses the whole campaign. Here every run executes under
//! [`std::panic::catch_unwind`]: a panicking run is retried up to the
//! configured budget (distinguishing transient from deterministic poison)
//! and then *quarantined* — recorded as [`InjOutcome::Quarantined`] with
//! its payload in a [`QuarantineRecord`], renderable as a replayable
//! `.repro` file — while the rest of the campaign proceeds.
//!
//! Supervised panics are muted through a wrapping panic hook (installed
//! once, delegating to the previous hook for unsupervised panics), so a
//! campaign with a poisoned site doesn't spray backtraces over the
//! progress display.

use crate::campaign::{Campaign, InjOutcome, QuarantineRecord};
use crate::wal::WalSink;
use epvf_interp::InjectionSpec;
use epvf_telemetry::Ctr;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// Set while this thread is inside a supervised run; the wrapping
    /// panic hook stays silent for those panics (they are caught,
    /// classified, and recorded — not crashes of the tool itself).
    static IN_SUPERVISED_RUN: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_SUPERVISED_RUN.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Best-effort stringification of a panic payload (`&str` and `String`
/// cover everything `panic!` produces; anything else is labeled opaque).
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// State threaded into [`Campaign::run_specs_session`]: outcomes already
/// recovered from a write-ahead log (their specs are skipped, not
/// re-executed) and an optional live WAL sink that records fresh
/// completions for a later resume.
#[derive(Debug)]
pub struct RunSession<'w> {
    /// `spec-list index -> outcome` salvaged by
    /// [`WalSink::recover`](crate::WalSink::recover); prefilled into the
    /// result instead of being re-run. Keys are *local* to the spec list
    /// being run; a caller resuming a multi-round campaign shifts its
    /// global WAL indices down by [`RunSession::index_base`] first.
    pub recovered: BTreeMap<usize, InjOutcome>,
    /// Live WAL to append each completed run to.
    pub wal: Option<&'w WalSink>,
    /// Offset added to local spec indices in WAL records. A single-shot
    /// campaign leaves this 0; the adaptive sampler sets it to the number
    /// of runs already executed in earlier rounds, so one WAL spans the
    /// whole multi-round campaign with globally unique indices.
    pub index_base: usize,
    /// Stride between consecutive local specs' global WAL indices
    /// (default 1). A campaign shard `i` of `S` runs the strided slice
    /// `i, i+S, i+2S, …` of the full draw order; setting `index_base = i`
    /// and `index_stride = S` makes its WAL records carry the *global*
    /// draw index `i + k·S` for the shard's `k`-th spec, so `epvf merge`
    /// can union shard WALs without any per-shard remapping.
    pub index_stride: usize,
    /// Suppress this run's own progress line (the caller drives one).
    pub quiet: bool,
}

impl Default for RunSession<'_> {
    fn default() -> Self {
        RunSession {
            recovered: BTreeMap::new(),
            wal: None,
            index_base: 0,
            index_stride: 1,
            quiet: false,
        }
    }
}

impl RunSession<'_> {
    /// Global WAL index of the `local`-th spec in the list being run
    /// (`index_base + local × index_stride`; a stride of 0 is treated
    /// as 1).
    pub fn global_index(&self, local: usize) -> usize {
        self.index_base + local * self.index_stride.max(1)
    }
}

impl Campaign<'_> {
    /// Execute one spec under panic isolation.
    ///
    /// A run that panics is retried up to `config.retries` times; if every
    /// attempt panics (or the interpreter reports an internal setup error,
    /// which no retry can fix) the run is quarantined. Exactly one
    /// `runs_total` + outcome-class counter pair is recorded per call, so
    /// the telemetry conservation law holds whatever happens inside.
    pub(crate) fn run_spec_supervised(
        &self,
        index: usize,
        spec: InjectionSpec,
    ) -> (InjOutcome, Option<QuarantineRecord>) {
        install_quiet_hook();
        let attempts = self.config().retries.saturating_add(1);
        let mut used = 0u32;
        let mut payload = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                used = attempt;
                epvf_telemetry::add(Ctr::CampaignPanicRetries, 1);
            }
            IN_SUPERVISED_RUN.with(|s| s.set(true));
            let run = panic::catch_unwind(AssertUnwindSafe(|| self.try_run_spec(spec)));
            IN_SUPERVISED_RUN.with(|s| s.set(false));
            match run {
                Ok(Ok(outcome)) => {
                    epvf_telemetry::add(Ctr::CampaignRunsTotal, 1);
                    epvf_telemetry::add(outcome.counter(), 1);
                    return (outcome, None);
                }
                Ok(Err(e)) => {
                    // Structured interpreter error: deterministic, skip
                    // the retry budget.
                    payload = format!("internal error: {e}");
                    break;
                }
                Err(p) => payload = payload_string(p.as_ref()),
            }
        }
        epvf_telemetry::add(Ctr::CampaignRunsTotal, 1);
        epvf_telemetry::add(Ctr::CampaignRunsQuarantined, 1);
        (
            InjOutcome::Quarantined,
            Some(QuarantineRecord {
                index,
                spec,
                payload,
                retries: used,
            }),
        )
    }

    /// Render a quarantined run as a replayable repro file in the format
    /// `epvf oracle --replay` consumes: a `#`-prefixed header carrying the
    /// entry, args, and `dyn:slot:bit` spec, a `---` separator, then the
    /// full module text.
    pub fn render_quarantine_repro(&self, q: &QuarantineRecord) -> String {
        let mut head = String::new();
        head.push_str("# epvf-oracle repro v1\n");
        head.push_str(&format!("# label: quarantined run {}\n", q.index));
        head.push_str(&format!("# entry: {}\n", self.entry()));
        let args: Vec<String> = self.args().iter().map(u64::to_string).collect();
        head.push_str(&format!("# args: {}\n", args.join(" ")));
        head.push_str(&format!("# spec: {}\n", q.spec));
        head.push_str("# kind: quarantine\n");
        head.push_str("# observed: quarantined\n");
        head.push_str(&format!(
            "# predicted: panic after {} retr{}: {}\n",
            q.retries,
            if q.retries == 1 { "y" } else { "ies" },
            q.payload.replace('\n', " "),
        ));
        head.push_str("---\n");
        head.push_str(&format!("{}", self.module()));
        head
    }

    /// Write every quarantine in `result` to `dir` as
    /// `<prefix>-NNN-quarantine.repro`; returns the written paths.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_quarantine_repros(
        &self,
        dir: &std::path::Path,
        prefix: &str,
        quarantines: &[QuarantineRecord],
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut paths = Vec::new();
        for (i, q) in quarantines.iter().enumerate() {
            let path = dir.join(format!("{prefix}-{i:03}-quarantine.repro"));
            epvf_telemetry::atomic_write(&path, self.render_quarantine_repro(q).as_bytes())?;
            paths.push(path);
        }
        Ok(paths)
    }
}
