//! Fault-tolerant shard supervisor: concurrent worker processes with
//! hang/crash recovery.
//!
//! A sharded campaign's workers are ordinary OS processes whose only
//! durable product is a crash-safe WAL (see [`crate::wal`]). That makes
//! worker failure cheap to survive: kill whatever is left of the
//! process and start a fresh one with `--resume` — recovery truncates
//! the torn tail and the worker re-executes only the runs the log does
//! not already hold. This module is the loop that does exactly that,
//! for all shards **concurrently**:
//!
//! - **Heartbeat.** Workers do not speak a side protocol; the WAL file
//!   itself is the heartbeat. The supervisor sets
//!   `EPVF_WAL_FLUSH_BATCH=1` in every child so each completed run
//!   reaches the file, and samples `len(WAL)` every poll tick — growth
//!   is progress. A worker that stops growing its WAL for longer than
//!   [`SupervisorConfig::stall_timeout`] (a SIGSTOPped, livelocked, or
//!   wedged process) is killed and classified as a **hang**, as is one
//!   that outlives the per-attempt [`SupervisorConfig::deadline`].
//!   The stall window must cover the worker's startup phase (golden
//!   run + site enumeration happen before the WAL header is written),
//!   so callers size it in seconds, not milliseconds.
//! - **Crash detection.** A worker that exits on a signal or with an
//!   exit code outside [`SupervisorConfig::success_codes`] is a
//!   **crash** (the codes default to `{0, 3}`: exit 3 is the CLI's
//!   graceful-degradation gate, which still writes a complete WAL).
//! - **Restart policy.** Each failure consumes one unit of the
//!   per-shard retry budget. Restarts resume from the shard's WAL when
//!   its header survived (`len >= 16`), else start fresh, after an
//!   exponential backoff with deterministic seeded jitter
//!   (`delay ∈ [2^(k-1)·base/2, 2^(k-1)·base]`, capped) — so a
//!   persistently failing shard cannot hot-loop, and two supervisors
//!   with the same seed back off identically.
//! - **Chaos injection.** The test-only [`ChaosConfig`] hook SIGKILLs
//!   and SIGSTOPs *random* running workers from inside the supervision
//!   loop itself, which is how the chaos harness proves the recovery
//!   path preserves the byte-identity contract.
//!
//! The supervisor never interprets campaign results; it only reports
//! per-shard success/failure and counts what it saw
//! (`supervisor.{shards,spawned,restarts,hangs,crashes}` under the
//! conservation law `spawned == shards + restarts`). Salvaging a failed
//! shard's WAL prefix is merge-side policy (`epvf run-sharded
//! --allow-partial`), not supervisor policy.

use epvf_telemetry::{add, Ctr};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How one shard worker attempt is launched. The supervisor decides
/// per attempt whether to use `fresh_args` (no usable WAL on disk) or
/// `resume_args` (header intact), both argv tails for `program`.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard index (for logs and telemetry only).
    pub index: usize,
    /// Executable to spawn.
    pub program: PathBuf,
    /// Argv for a from-scratch attempt.
    pub fresh_args: Vec<String>,
    /// Argv for a resume-from-WAL attempt.
    pub resume_args: Vec<String>,
    /// The shard's WAL file: heartbeat source and resume decision.
    pub wal: PathBuf,
    /// Scratch file capturing the worker's stderr (truncated per
    /// attempt); the CLI surfaces its tail on failure.
    pub stderr_path: PathBuf,
    /// Extra environment for the child.
    pub envs: Vec<(String, String)>,
}

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Restarts allowed per shard (0 = fail on first error).
    pub retries: u32,
    /// Kill a worker whose WAL has not grown for this long.
    pub stall_timeout: Option<Duration>,
    /// Kill a worker attempt that runs longer than this in total.
    pub deadline: Option<Duration>,
    /// Base of the exponential backoff between restarts.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Exit codes that count as shard success.
    pub success_codes: Vec<i32>,
    /// How often the loop samples children and WALs.
    pub poll_interval: Duration,
    /// Test-only fault injection into the loop itself.
    pub chaos: Option<ChaosConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retries: 2,
            stall_timeout: None,
            deadline: None,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
            seed: 0,
            success_codes: vec![0, 3],
            poll_interval: Duration::from_millis(15),
            chaos: None,
        }
    }
}

/// Test-only chaos injection: per poll tick, each running worker is
/// SIGKILLed with probability `kill_p` and SIGSTOPped with probability
/// `stop_p`, up to `max_events` injections total (bounding the budget
/// guarantees a finite retry budget can still win). `halt_shard`
/// deterministically SIGKILLs that shard immediately at every spawn —
/// the retry-exhaustion lever for `--allow-partial` tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Per-tick SIGKILL probability per running worker.
    pub kill_p: f64,
    /// Per-tick SIGSTOP probability per running worker.
    pub stop_p: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cap on total injected events (kills + stops), halts excluded.
    pub max_events: u32,
    /// Kill this shard at every spawn, unconditionally.
    pub halt_shard: Option<usize>,
}

impl ChaosConfig {
    /// Parse the CLI spec `kill:P,stop:P[,seed:S][,max:N][,halt:I]`.
    /// Omitted probabilities default to 0, `seed` to 0, `max` to 8.
    ///
    /// # Errors
    /// A human-readable message for unknown keys or unparsable values.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig {
            kill_p: 0.0,
            stop_p: 0.0,
            seed: 0,
            max_events: 8,
            halt_shard: None,
        };
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("chaos clause `{part}` is not key:value"))?;
            let bad = |what: &str| format!("chaos {key} has a bad {what}: `{value}`");
            match key.trim() {
                "kill" => {
                    cfg.kill_p = value.trim().parse().map_err(|_| bad("probability"))?;
                }
                "stop" => {
                    cfg.stop_p = value.trim().parse().map_err(|_| bad("probability"))?;
                }
                "seed" => cfg.seed = value.trim().parse().map_err(|_| bad("integer"))?,
                "max" => cfg.max_events = value.trim().parse().map_err(|_| bad("integer"))?,
                "halt" => {
                    cfg.halt_shard = Some(value.trim().parse().map_err(|_| bad("shard index"))?)
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        if !(0.0..=1.0).contains(&cfg.kill_p) || !(0.0..=1.0).contains(&cfg.stop_p) {
            return Err("chaos probabilities must be within [0, 1]".into());
        }
        Ok(cfg)
    }
}

/// Why a worker attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Died on a signal (SIGKILL, SIGSEGV, ...), not by our hand.
    Signal(i32),
    /// Exited with a code outside the success set.
    Exit(i32),
    /// Killed by the supervisor: WAL stopped growing.
    Stalled,
    /// Killed by the supervisor: per-attempt deadline exceeded.
    DeadlineExceeded,
    /// The spawn itself failed.
    SpawnError,
}

impl FailureKind {
    /// Whether this failure counts as a hang (supervisor-initiated
    /// kill) rather than a crash.
    pub fn is_hang(self) -> bool {
        matches!(self, FailureKind::Stalled | FailureKind::DeadlineExceeded)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Signal(sig) => write!(f, "killed by signal {sig}"),
            FailureKind::Exit(code) => write!(f, "exited with code {code}"),
            FailureKind::Stalled => write!(f, "stalled (no WAL progress)"),
            FailureKind::DeadlineExceeded => write!(f, "exceeded the shard deadline"),
            FailureKind::SpawnError => write!(f, "failed to spawn"),
        }
    }
}

/// Narration hook: one call per notable supervision moment, mapped to
/// log lines by the CLI.
#[derive(Debug, Clone)]
pub enum Event {
    /// A worker attempt started (`attempt` is 1-based; `resumed` says
    /// whether it restarts from the shard's WAL).
    Spawned {
        /// Shard index.
        shard: usize,
        /// 1-based attempt number.
        attempt: u32,
        /// Whether the attempt resumes from the WAL.
        resumed: bool,
    },
    /// A worker attempt failed; a retry is scheduled after `backoff`
    /// when `will_retry`.
    Failed {
        /// Shard index.
        shard: usize,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Why.
        kind: FailureKind,
        /// Whether the retry budget allows another attempt.
        will_retry: bool,
        /// Backoff before that attempt (zero when `!will_retry`).
        backoff: Duration,
    },
    /// A worker attempt finished successfully.
    Succeeded {
        /// Shard index.
        shard: usize,
        /// 1-based attempt number that succeeded.
        attempt: u32,
    },
    /// Chaos injected a fault into a running worker.
    Chaos {
        /// Shard index.
        shard: usize,
        /// `"kill"`, `"stop"`, or `"halt"`.
        action: &'static str,
    },
}

/// Final fate of one shard.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index.
    pub index: usize,
    /// Whether any attempt succeeded.
    pub ok: bool,
    /// Attempts consumed (≥ 1 unless the plan list was empty).
    pub attempts: u32,
    /// The last failure, if any attempt failed.
    pub last_failure: Option<FailureKind>,
}

/// What the supervisor saw, summed over all shards. The counts mirror
/// the `supervisor.*` telemetry counters.
#[derive(Debug, Clone, Default)]
pub struct SupervisorReport {
    /// Per-shard outcomes, in plan order.
    pub shards: Vec<ShardOutcome>,
    /// Worker processes spawned (== shards + restarts).
    pub spawned: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Supervisor-initiated kills (stall or deadline).
    pub hangs: u64,
    /// Signal deaths and bad exit codes.
    pub crashes: u64,
    /// Chaos SIGKILLs injected.
    pub chaos_kills: u64,
    /// Chaos SIGSTOPs injected.
    pub chaos_stops: u64,
}

impl SupervisorReport {
    /// Whether every shard completed successfully.
    pub fn all_ok(&self) -> bool {
        self.shards.iter().all(|s| s.ok)
    }

    /// Indices of shards that exhausted their retry budget.
    pub fn failed_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| !s.ok)
            .map(|s| s.index)
            .collect()
    }
}

/// splitmix64 — tiny, seedable, and good enough for jitter and chaos
/// coin flips without pulling in an RNG dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The jittered exponential backoff before restart number `restart`
/// (1-based) of `shard`: `2^(restart-1) · base` capped at `cap`, then
/// jittered into `[delay/2, delay]`. Deterministic in
/// `(seed, shard, restart)` — no wall clock, no global RNG.
pub fn backoff_delay(cfg: &SupervisorConfig, shard: usize, restart: u32) -> Duration {
    let exp = cfg
        .backoff_base
        .saturating_mul(1u32 << (restart - 1).min(16))
        .min(cfg.backoff_cap);
    let mut rng = SplitMix64(
        cfg.seed
            ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ u64::from(restart).wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
    );
    exp.div_f64(2.0) + exp.div_f64(2.0).mul_f64(rng.unit())
}

enum ShardState {
    /// Waiting to (re)spawn at `wake`.
    Waiting {
        wake: Instant,
    },
    Running {
        child: Child,
        spawned_at: Instant,
        last_len: u64,
        last_progress: Instant,
        /// Set when the supervisor itself killed the child; classifies
        /// the upcoming reap as a hang instead of a crash.
        pending_kill: Option<FailureKind>,
        /// The child is currently SIGSTOPped by chaos (skip further
        /// chaos; the stall detector is the recovery path).
        stopped: bool,
    },
    Done,
}

struct ShardSlot<'p> {
    plan: &'p ShardPlan,
    state: ShardState,
    attempts: u32,
    last_failure: Option<FailureKind>,
    ok: bool,
}

fn wal_len(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Send a signal by name (`STOP`, `CONT`) to a pid via the system
/// `kill` utility — avoids a libc dependency for the one place the
/// standard library has no API.
fn signal_pid(pid: u32, sig: &str) -> bool {
    Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn spawn_attempt(
    plan: &ShardPlan,
    attempt: u32,
    emit: &mut dyn FnMut(Event),
) -> Result<(Child, bool), FailureKind> {
    // A WAL whose 16-byte header (magic + fingerprint) survived is
    // resumable; anything shorter — including a worker killed before
    // `WalSink::create` ran — starts over from scratch.
    let resumed = wal_len(&plan.wal) >= 16;
    if !resumed {
        let _ = std::fs::remove_file(&plan.wal);
    }
    let stderr = match std::fs::File::create(&plan.stderr_path) {
        Ok(f) => Stdio::from(f),
        Err(_) => Stdio::null(),
    };
    let args = if resumed {
        &plan.resume_args
    } else {
        &plan.fresh_args
    };
    let mut cmd = Command::new(&plan.program);
    cmd.args(args)
        // Flush the WAL after every record so file growth is a
        // fine-grained heartbeat (the batched default could look like
        // a 64-record stall).
        .env("EPVF_WAL_FLUSH_BATCH", "1")
        .stdout(Stdio::null())
        .stderr(stderr);
    for (k, v) in &plan.envs {
        cmd.env(k, v);
    }
    match cmd.spawn() {
        Ok(child) => {
            emit(Event::Spawned {
                shard: plan.index,
                attempt,
                resumed,
            });
            Ok((child, resumed))
        }
        Err(_) => Err(FailureKind::SpawnError),
    }
}

/// Run every shard plan to completion (or retry exhaustion),
/// concurrently, under the failure policy in `cfg`. `emit` receives
/// the narration [`Event`]s as they happen.
///
/// Increments the `supervisor.*` telemetry counters; the conservation
/// laws `spawned == shards + restarts`,
/// `restarts <= hangs + crashes <= spawned` hold on the report and on
/// the registry alike.
///
/// # Errors
/// Only unrecoverable supervisor-side I/O (none today — spawn failures
/// are per-shard failures, not supervisor errors); returns `Ok` even
/// when shards failed, with the fates in the report.
pub fn supervise(
    plans: &[ShardPlan],
    cfg: &SupervisorConfig,
    emit: &mut dyn FnMut(Event),
) -> io::Result<SupervisorReport> {
    let mut report = SupervisorReport::default();
    add(Ctr::SupervisorShards, plans.len() as u64);
    let now = Instant::now();
    let mut slots: Vec<ShardSlot> = plans
        .iter()
        .map(|plan| ShardSlot {
            plan,
            state: ShardState::Waiting { wake: now },
            attempts: 0,
            last_failure: None,
            ok: false,
        })
        .collect();
    let mut chaos_rng = cfg
        .chaos
        .as_ref()
        .map(|c| SplitMix64(c.seed ^ 0xc4a0_59a1_5c4a_0e11));
    let mut chaos_events = 0u32;

    loop {
        let mut all_done = true;
        let now = Instant::now();
        for slot in &mut slots {
            match &mut slot.state {
                ShardState::Done => continue,
                ShardState::Waiting { wake } => {
                    all_done = false;
                    if *wake > now {
                        continue;
                    }
                    slot.attempts += 1;
                    add(Ctr::SupervisorSpawned, 1);
                    report.spawned += 1;
                    if slot.attempts > 1 {
                        add(Ctr::SupervisorRestarts, 1);
                        report.restarts += 1;
                    }
                    match spawn_attempt(slot.plan, slot.attempts, emit) {
                        Ok((child, _)) => {
                            let mut state = ShardState::Running {
                                child,
                                spawned_at: now,
                                last_len: wal_len(&slot.plan.wal),
                                last_progress: now,
                                pending_kill: None,
                                stopped: false,
                            };
                            // Deterministic chaos: the halted shard dies
                            // at birth, every attempt.
                            if let Some(chaos) = &cfg.chaos {
                                if chaos.halt_shard == Some(slot.plan.index) {
                                    if let ShardState::Running { child, .. } = &mut state {
                                        let _ = child.kill();
                                    }
                                    emit(Event::Chaos {
                                        shard: slot.plan.index,
                                        action: "halt",
                                    });
                                } else if let Some(rng) = &mut chaos_rng {
                                    // Random chaos also flips a coin at
                                    // spawn: a worker that finishes
                                    // inside one poll tick would
                                    // otherwise never be disturbable,
                                    // and mid-campaign includes the
                                    // very first record.
                                    if chaos_events < chaos.max_events {
                                        if rng.unit() < chaos.kill_p {
                                            chaos_events += 1;
                                            report.chaos_kills += 1;
                                            add(Ctr::SupervisorChaosKills, 1);
                                            if let ShardState::Running { child, .. } = &mut state {
                                                let _ = child.kill();
                                            }
                                            emit(Event::Chaos {
                                                shard: slot.plan.index,
                                                action: "kill",
                                            });
                                        } else if rng.unit() < chaos.stop_p {
                                            if let ShardState::Running { child, stopped, .. } =
                                                &mut state
                                            {
                                                if signal_pid(child.id(), "STOP") {
                                                    chaos_events += 1;
                                                    report.chaos_stops += 1;
                                                    add(Ctr::SupervisorChaosStops, 1);
                                                    *stopped = true;
                                                    emit(Event::Chaos {
                                                        shard: slot.plan.index,
                                                        action: "stop",
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            slot.state = state;
                        }
                        Err(kind) => {
                            fail_slot(slot, kind, cfg, &mut report, emit);
                        }
                    }
                }
                ShardState::Running {
                    child,
                    spawned_at,
                    last_len,
                    last_progress,
                    pending_kill,
                    stopped,
                } => {
                    all_done = false;
                    match child.try_wait() {
                        Ok(Some(status)) => {
                            let kind = classify_exit(&status, &cfg.success_codes, *pending_kill);
                            match kind {
                                None => {
                                    slot.ok = true;
                                    slot.state = ShardState::Done;
                                    emit(Event::Succeeded {
                                        shard: slot.plan.index,
                                        attempt: slot.attempts,
                                    });
                                }
                                Some(kind) => {
                                    fail_slot(slot, kind, cfg, &mut report, emit);
                                }
                            }
                            continue;
                        }
                        Ok(None) => {}
                        Err(_) => continue,
                    }
                    if pending_kill.is_some() {
                        // Kill already sent; just wait for the reap.
                        continue;
                    }
                    // Heartbeat: WAL growth is progress.
                    let len = wal_len(&slot.plan.wal);
                    if len > *last_len {
                        *last_len = len;
                        *last_progress = now;
                    }
                    let stalled = cfg
                        .stall_timeout
                        .is_some_and(|t| now.duration_since(*last_progress) > t);
                    let over_deadline = cfg
                        .deadline
                        .is_some_and(|t| now.duration_since(*spawned_at) > t);
                    if stalled || over_deadline {
                        *pending_kill = Some(if stalled {
                            FailureKind::Stalled
                        } else {
                            FailureKind::DeadlineExceeded
                        });
                        // SIGKILL also reaps a SIGSTOPped child — no
                        // SIGCONT needed first.
                        let _ = child.kill();
                        continue;
                    }
                    // Chaos tick.
                    if let (Some(chaos), Some(rng)) = (&cfg.chaos, &mut chaos_rng) {
                        if chaos_events < chaos.max_events && !*stopped {
                            if rng.unit() < chaos.kill_p {
                                chaos_events += 1;
                                report.chaos_kills += 1;
                                add(Ctr::SupervisorChaosKills, 1);
                                let _ = child.kill();
                                emit(Event::Chaos {
                                    shard: slot.plan.index,
                                    action: "kill",
                                });
                            } else if rng.unit() < chaos.stop_p {
                                chaos_events += 1;
                                report.chaos_stops += 1;
                                add(Ctr::SupervisorChaosStops, 1);
                                if signal_pid(child.id(), "STOP") {
                                    *stopped = true;
                                    emit(Event::Chaos {
                                        shard: slot.plan.index,
                                        action: "stop",
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        if all_done {
            break;
        }
        std::thread::sleep(cfg.poll_interval);
    }

    report.shards = slots
        .iter()
        .map(|s| ShardOutcome {
            index: s.plan.index,
            ok: s.ok,
            attempts: s.attempts,
            last_failure: s.last_failure,
        })
        .collect();
    Ok(report)
}

/// `None` = success. Supervisor-initiated kills classify as the kind
/// recorded when the kill was sent, not as the SIGKILL they die of.
fn classify_exit(
    status: &std::process::ExitStatus,
    success_codes: &[i32],
    pending_kill: Option<FailureKind>,
) -> Option<FailureKind> {
    if let Some(kind) = pending_kill {
        return Some(kind);
    }
    match status.code() {
        Some(code) if success_codes.contains(&code) => None,
        Some(code) => Some(FailureKind::Exit(code)),
        None => {
            #[cfg(unix)]
            {
                use std::os::unix::process::ExitStatusExt;
                Some(FailureKind::Signal(status.signal().unwrap_or(0)))
            }
            #[cfg(not(unix))]
            Some(FailureKind::Signal(0))
        }
    }
}

fn fail_slot(
    slot: &mut ShardSlot<'_>,
    kind: FailureKind,
    cfg: &SupervisorConfig,
    report: &mut SupervisorReport,
    emit: &mut dyn FnMut(Event),
) {
    if kind.is_hang() {
        add(Ctr::SupervisorHangs, 1);
        report.hangs += 1;
    } else {
        add(Ctr::SupervisorCrashes, 1);
        report.crashes += 1;
    }
    slot.last_failure = Some(kind);
    let will_retry = slot.attempts <= cfg.retries;
    let backoff = if will_retry {
        backoff_delay(cfg, slot.plan.index, slot.attempts)
    } else {
        Duration::ZERO
    };
    emit(Event::Failed {
        shard: slot.plan.index,
        attempt: slot.attempts,
        kind,
        will_retry,
        backoff,
    });
    slot.state = if will_retry {
        ShardState::Waiting {
            wake: Instant::now() + backoff,
        }
    } else {
        ShardState::Done
    };
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn sh(dir: &std::path::Path, name: &str, script: &str) -> ShardPlan {
        ShardPlan {
            index: 0,
            program: PathBuf::from("/bin/sh"),
            fresh_args: vec!["-c".into(), script.into()],
            resume_args: vec!["-c".into(), script.into()],
            wal: dir.join(format!("{name}.wal")),
            stderr_path: dir.join(format!("{name}.stderr")),
            envs: Vec::new(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("epvf-supervisor-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn quiet() -> impl FnMut(Event) {
        |_| {}
    }

    #[test]
    fn all_successful_workers_spawn_once() {
        let dir = tmpdir("ok");
        let plans: Vec<ShardPlan> = (0..3)
            .map(|i| {
                let mut p = sh(&dir, &format!("ok{i}"), "exit 0");
                p.index = i;
                p
            })
            .collect();
        let report = supervise(&plans, &SupervisorConfig::default(), &mut quiet()).unwrap();
        assert!(report.all_ok());
        assert_eq!(report.spawned, 3);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.hangs, 0);
    }

    #[test]
    fn degraded_exit_code_counts_as_success() {
        let dir = tmpdir("degraded");
        let report = supervise(
            &[sh(&dir, "deg", "exit 3")],
            &SupervisorConfig::default(),
            &mut quiet(),
        )
        .unwrap();
        assert!(report.all_ok());
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn persistent_failure_exhausts_the_retry_budget() {
        let dir = tmpdir("exhaust");
        let cfg = SupervisorConfig {
            retries: 2,
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let report = supervise(&[sh(&dir, "bad", "exit 7")], &cfg, &mut quiet()).unwrap();
        assert!(!report.all_ok());
        assert_eq!(report.failed_shards(), vec![0]);
        assert_eq!(report.shards[0].attempts, 3); // 1 first + 2 retries
        assert_eq!(report.spawned, 3);
        assert_eq!(report.restarts, 2);
        assert_eq!(report.crashes, 3);
        assert_eq!(report.shards[0].last_failure, Some(FailureKind::Exit(7)));
    }

    #[test]
    fn restart_resumes_once_the_wal_header_exists() {
        let dir = tmpdir("resume");
        // Fresh attempt writes a 16-byte header then fails; the resume
        // attempt (distinct argv) succeeds — proving the supervisor
        // switched argv based on the WAL.
        let wal = dir.join("resume.wal");
        let plan = ShardPlan {
            index: 0,
            program: PathBuf::from("/bin/sh"),
            fresh_args: vec![
                "-c".into(),
                format!("printf 'EPVFWAL1XXXXXXXX' > {}; exit 1", wal.display()),
            ],
            resume_args: vec!["-c".into(), "exit 0".into()],
            wal,
            stderr_path: dir.join("resume.stderr"),
            envs: Vec::new(),
        };
        let cfg = SupervisorConfig {
            retries: 1,
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let report = supervise(&[plan], &cfg, &mut quiet()).unwrap();
        assert!(report.all_ok(), "{report:?}");
        assert_eq!(report.restarts, 1);
        assert_eq!(report.crashes, 1);
    }

    #[test]
    fn stalled_worker_is_killed_and_classified_as_hang() {
        let dir = tmpdir("stall");
        let cfg = SupervisorConfig {
            retries: 0,
            stall_timeout: Some(Duration::from_millis(200)),
            ..SupervisorConfig::default()
        };
        let report = supervise(&[sh(&dir, "sleepy", "sleep 30")], &cfg, &mut quiet()).unwrap();
        assert!(!report.all_ok());
        assert_eq!(report.hangs, 1);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.shards[0].last_failure, Some(FailureKind::Stalled));
    }

    #[test]
    fn deadline_kill_is_distinct_from_stall() {
        let dir = tmpdir("deadline");
        let wal = dir.join("beat.wal");
        // The worker keeps growing its WAL (so it never stalls) but
        // outlives the deadline.
        let script = format!(
            "i=0; while [ $i -lt 100 ]; do echo beat >> {}; i=$((i+1)); sleep 0.05; done",
            wal.display()
        );
        let plan = ShardPlan {
            index: 0,
            program: PathBuf::from("/bin/sh"),
            fresh_args: vec!["-c".into(), script.clone()],
            resume_args: vec!["-c".into(), script],
            wal,
            stderr_path: dir.join("beat.stderr"),
            envs: Vec::new(),
        };
        let cfg = SupervisorConfig {
            retries: 0,
            stall_timeout: Some(Duration::from_secs(10)),
            deadline: Some(Duration::from_millis(300)),
            ..SupervisorConfig::default()
        };
        let report = supervise(&[plan], &cfg, &mut quiet()).unwrap();
        assert_eq!(report.hangs, 1);
        assert_eq!(
            report.shards[0].last_failure,
            Some(FailureKind::DeadlineExceeded)
        );
    }

    #[test]
    fn halt_chaos_guarantees_retry_exhaustion() {
        let dir = tmpdir("halt");
        let cfg = SupervisorConfig {
            retries: 1,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ChaosConfig::parse("halt:0").unwrap()),
            ..SupervisorConfig::default()
        };
        let report = supervise(&[sh(&dir, "halted", "sleep 30")], &cfg, &mut quiet()).unwrap();
        assert!(!report.all_ok());
        assert_eq!(report.spawned, 2);
        // Every attempt dies on the injected SIGKILL.
        assert!(matches!(
            report.shards[0].last_failure,
            Some(FailureKind::Signal(_))
        ));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(800),
            seed: 42,
            ..SupervisorConfig::default()
        };
        for shard in 0..4 {
            for restart in 1..8 {
                let a = backoff_delay(&cfg, shard, restart);
                let b = backoff_delay(&cfg, shard, restart);
                assert_eq!(a, b, "same inputs, same delay");
                let exp = Duration::from_millis(100)
                    .saturating_mul(1 << (restart - 1).min(16))
                    .min(Duration::from_millis(800));
                assert!(a >= exp.div_f64(2.0) && a <= exp, "jitter window");
            }
        }
        // Different seeds give different jitter somewhere.
        let other = SupervisorConfig {
            seed: 43,
            ..cfg.clone()
        };
        assert!((1..8).any(|r| backoff_delay(&cfg, 0, r) != backoff_delay(&other, 0, r)));
    }

    #[test]
    fn chaos_spec_parses_and_rejects() {
        let c = ChaosConfig::parse("kill:0.3,stop:0.25,seed:9,max:5,halt:2").unwrap();
        assert_eq!(c.kill_p, 0.3);
        assert_eq!(c.stop_p, 0.25);
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_events, 5);
        assert_eq!(c.halt_shard, Some(2));
        let d = ChaosConfig::parse("kill:0.5").unwrap();
        assert_eq!(d.stop_p, 0.0);
        assert_eq!(d.max_events, 8);
        assert!(ChaosConfig::parse("kill:2.0").is_err());
        assert!(ChaosConfig::parse("frob:1").is_err());
        assert!(ChaosConfig::parse("kill").is_err());
    }
}

#[cfg(all(test, unix))]
mod chaos_tick_tests {
    use super::*;

    #[test]
    fn random_kill_chaos_fires_on_running_workers() {
        let dir = std::env::temp_dir().join(format!("epvf-chaos-tick-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = ShardPlan {
            index: 0,
            program: PathBuf::from("/bin/sh"),
            fresh_args: vec!["-c".into(), "sleep 5".into()],
            resume_args: vec!["-c".into(), "exit 0".into()],
            wal: dir.join("tick.wal"),
            stderr_path: dir.join("tick.stderr"),
            envs: Vec::new(),
        };
        let cfg = SupervisorConfig {
            retries: 1,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ChaosConfig::parse("kill:1.0,max:1,seed:3").unwrap()),
            ..SupervisorConfig::default()
        };
        let report = supervise(&[plan], &cfg, &mut |_| {}).unwrap();
        assert_eq!(report.chaos_kills, 1, "{report:?}");
    }
}
