//! Recall / precision evaluation of the ePVF crash prediction against
//! fault-injection ground truth (paper §IV-B, Figs. 6–7).

use crate::campaign::{Campaign, CampaignResult, InjOutcome};
use crate::site::injectable_operand;
use epvf_core::CrashMap;
use epvf_interp::InjectionSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Recall of crash prediction: of the injections that *did* crash, how many
/// did the model flag as crash bits?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecallReport {
    /// Crashing runs the model predicted.
    pub true_positives: usize,
    /// Crashing runs the model missed.
    pub false_negatives: usize,
}

impl RecallReport {
    /// `TP / (TP + FN)`; 1.0 when no crash occurred.
    pub fn recall(&self) -> f64 {
        let total = self.true_positives + self.false_negatives;
        if total == 0 {
            1.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }
}

/// Evaluate recall over a finished campaign (paper: "the ratio of crash runs
/// that our model predicts correctly to be crashes, to all fault injection
/// runs that lead to crashes in reality").
pub fn recall_study(result: &CampaignResult, crash_map: &CrashMap) -> RecallReport {
    let mut tp = 0;
    let mut fn_ = 0;
    for (spec, outcome) in &result.runs {
        if !outcome.is_crash() {
            continue;
        }
        if crash_map.predicts_crash(spec.dyn_idx, spec.operand_slot, spec.bit) {
            tp += 1;
        } else {
            fn_ += 1;
        }
    }
    RecallReport {
        true_positives: tp,
        false_negatives: fn_,
    }
}

/// Precision of crash prediction via targeted injection into predicted
/// crash bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionReport {
    /// Targeted injections performed.
    pub injected: usize,
    /// Of those, runs that actually crashed.
    pub crashed: usize,
    /// Predicted crash bits available for sampling.
    pub candidates: usize,
}

impl PrecisionReport {
    /// `crashed / injected`; 1.0 when nothing was injected.
    pub fn precision(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.crashed as f64 / self.injected as f64
        }
    }
}

/// Enumerate every `(site, bit)` the model marks as crash-causing, restricted
/// to injectable (register-read) sites.
pub fn predicted_crash_specs(campaign: &Campaign<'_>, crash_map: &CrashMap) -> Vec<InjectionSpec> {
    let module = campaign_module(campaign);
    let trace = campaign.golden().trace.as_ref().expect("golden is traced");
    let mut specs = Vec::new();
    for (&(dyn_idx, slot), c) in crash_map.uses() {
        let Some(rec) = trace.get(dyn_idx) else {
            continue;
        };
        let Some(width) = injectable_operand(module, rec, slot) else {
            continue;
        };
        let op = &rec.operands[slot];
        for bit in c.range.crash_bits(op.bits, width.min(c.width)) {
            specs.push(InjectionSpec {
                dyn_idx,
                operand_slot: slot,
                bit,
            });
        }
    }
    specs.sort_by_key(|s| (s.dyn_idx, s.operand_slot, s.bit));
    specs
}

fn campaign_module<'m>(campaign: &Campaign<'m>) -> &'m epvf_ir::Module {
    campaign.module()
}

/// Run the precision study: sample up to `n` predicted crash bits (without
/// replacement) and inject exactly those (paper: "over 1,200 different bits
/// ... precision is calculated as the number of observed crashes over the
/// total number of fault injections performed").
pub fn precision_study(
    campaign: &Campaign<'_>,
    crash_map: &CrashMap,
    n: usize,
    seed: u64,
) -> PrecisionReport {
    let mut specs = predicted_crash_specs(campaign, crash_map);
    let candidates = specs.len();
    let mut rng = StdRng::seed_from_u64(seed);
    specs.shuffle(&mut rng);
    specs.truncate(n);
    let result = campaign.run_specs(&specs);
    let crashed = result.count(InjOutcome::is_crash);
    PrecisionReport {
        injected: specs.len(),
        crashed,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use epvf_core::{analyze, EpvfConfig};
    use epvf_ir::{IcmpPred, Module, ModuleBuilder, Type, Value};

    fn kernel_module() -> Module {
        let mut mb = ModuleBuilder::new("k");
        let mut f = mb.function("main", vec![Type::I32], None);
        let n = f.param(0);
        let bytes = f.zext(Type::I32, Type::I64, n);
        let size = f.mul(Type::I64, bytes, Value::i64(4));
        let arr = f.malloc(size);
        let entry = f.current_block();
        let header = f.create_block("h");
        let body = f.create_block("b");
        let exit = f.create_block("e");
        f.br(header);
        f.switch_to(header);
        let i = f.phi(Type::I32, vec![(entry, Value::i32(0))]);
        let c = f.icmp(IcmpPred::Slt, Type::I32, i, n);
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let v = f.mul(Type::I32, i, Value::i32(3));
        let slot = f.gep(arr, i, 4);
        f.store(Type::I32, v, slot);
        let lv = f.load(Type::I32, slot);
        f.output(Type::I32, lv);
        let i2 = f.add(Type::I32, i, Value::i32(1));
        f.add_incoming(i, body, i2);
        f.br(header);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        mb.finish().expect("verifies")
    }

    #[test]
    fn recall_high_in_deterministic_setting() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let trace = campaign.golden().trace.as_ref().expect("trace");
        let res = analyze(&m, trace, EpvfConfig::default());
        let fi = campaign.run(500, 77);
        let recall = recall_study(&fi, &res.crash_map);
        assert!(
            recall.recall() > 0.8,
            "deterministic recall should be high, got {} ({recall:?})",
            recall.recall()
        );
        assert!(recall.true_positives > 0);
    }

    #[test]
    fn precision_near_one_in_deterministic_setting() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let trace = campaign.golden().trace.as_ref().expect("trace");
        let res = analyze(&m, trace, EpvfConfig::default());
        let p = precision_study(&campaign, &res.crash_map, 300, 123);
        assert!(
            p.injected > 100,
            "enough predicted crash bits: {}",
            p.candidates
        );
        // Not 1.0 even deterministically: constraints propagated through
        // loop-carried phis can be masked by the loop guard (a corrupted
        // counter fails `i < n` and exits before the bad address is used) —
        // the same control-flow masking that keeps the paper's precision in
        // the 86–98% band.
        assert!(
            p.precision() > 0.75,
            "deterministic precision should be in the paper's band, got {}",
            p.precision()
        );
    }

    #[test]
    fn precision_is_near_perfect_on_direct_address_uses() {
        // Restricting to the memory instructions' own address operands
        // removes the control-flow masking: those flips crash essentially
        // always.
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[24], CampaignConfig::default()).expect("golden");
        let trace = campaign.golden().trace.as_ref().expect("trace");
        let res = analyze(&m, trace, EpvfConfig::default());
        let specs: Vec<_> = predicted_crash_specs(&campaign, &res.crash_map)
            .into_iter()
            .filter(|s| {
                let rec = trace.get(s.dyn_idx).expect("valid");
                rec.mem
                    .as_ref()
                    .is_some_and(|mem| s.operand_slot == usize::from(mem.is_store))
            })
            .take(200)
            .collect();
        assert!(specs.len() > 50);
        let result = campaign.run_specs(&specs);
        let crashed = result.count(InjOutcome::is_crash);
        let precision = crashed as f64 / specs.len() as f64;
        assert!(precision > 0.97, "direct-address precision {precision}");
    }

    #[test]
    fn predicted_specs_are_valid_sites() {
        let m = kernel_module();
        let campaign = Campaign::new(&m, "main", &[12], CampaignConfig::default()).expect("golden");
        let trace = campaign.golden().trace.as_ref().expect("trace");
        let res = analyze(&m, trace, EpvfConfig::default());
        let specs = predicted_crash_specs(&campaign, &res.crash_map);
        assert!(!specs.is_empty());
        for s in &specs {
            let rec = trace.get(s.dyn_idx).expect("valid dyn idx");
            let op = rec.operands.get(s.operand_slot).expect("valid slot");
            assert!(op.src.is_some(), "register sites only");
        }
        // Deterministic enumeration order.
        let again = predicted_crash_specs(&campaign, &res.crash_map);
        assert_eq!(specs, again);
    }
}
