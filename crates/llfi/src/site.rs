//! Injection-site enumeration and uniform sampling.
//!
//! The paper's campaigns "inject faults into the source registers for the
//! executed instructions ... all faults are activated" (§IV-A). A *site* is
//! one register-operand read of one dynamic instruction; the sample space is
//! the set of `(site, bit)` pairs, drawn uniformly so that wide registers
//! receive proportionally more faults — the same space the analytical
//! crash-rate estimate integrates over.

use epvf_core::{BitBand, FaultCtx, FaultModel, OpClass, OpClassTable, OperandKind, SiteClass};
use epvf_interp::{InjectionSpec, Trace};
use epvf_ir::Module;
use rand::Rng;

// The single definition of "injectable site" lives in `epvf_core` next to
// the fault models that reinterpret it; re-exported here for the random
// campaigns, the targeted precision study, and the exhaustive oracle.
pub use epvf_core::injectable_operand;

/// One injectable operand read (or, for non-register fault models, one
/// injection point of the active [`FaultModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionSite {
    /// Dynamic instruction index.
    pub dyn_idx: u64,
    /// Operand slot within the instruction.
    pub slot: usize,
    /// Number of injection points at this site (register width in bits for
    /// bit-indexed models).
    pub width: u32,
    /// Opcode class of the consuming instruction (stratification key).
    pub op_class: OpClass,
    /// Kind of the operand register (stratification key).
    pub operand_kind: OperandKind,
    /// Whether the point index is a bit position (bit-indexed models
    /// stratify on its [`BitBand`]; others get a bandless stratum).
    pub banded: bool,
}

impl InjectionSite {
    /// Full stratum key of injecting point `bit` at this site.
    pub fn class_of_bit(&self, bit: u8) -> SiteClass {
        SiteClass {
            op: self.op_class,
            operand: self.operand_kind,
            band: self.banded.then(|| BitBand::of(bit)),
        }
    }
}

/// All injectable sites of a golden trace, with cumulative bit weights for
/// uniform `(site, bit)` sampling.
#[derive(Debug, Clone, Default)]
pub struct SiteTable {
    sites: Vec<InjectionSite>,
    /// `cum[i]` = total bits of sites `0..=i`.
    cum: Vec<u64>,
}

impl SiteTable {
    /// Enumerate every register-operand read in the trace — the paper's
    /// default single-bit-flip universe.
    pub fn from_trace(module: &Module, trace: &Trace) -> Self {
        Self::for_model(&epvf_core::SingleBitFlip, module, trace)
    }

    /// Enumerate the injection points of `model` over the trace. Each
    /// dynamic record is probed at every operand slot (plus slot 0 for
    /// operand-less instructions, so whole-instruction models can claim
    /// them); the model decides which pairs are sites and how many points
    /// each contributes.
    pub fn for_model(model: &dyn FaultModel, module: &Module, trace: &Trace) -> Self {
        let classes = OpClassTable::new(module);
        let ctx = FaultCtx::new(module);
        let banded = model.bit_indexed();
        let mut sites = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        for rec in trace {
            for slot in 0..rec.operands.len().max(1) {
                let Some(width) = model.points(&ctx, module, rec, slot) else {
                    continue;
                };
                total += u64::from(width);
                sites.push(InjectionSite {
                    dyn_idx: rec.idx,
                    slot,
                    width,
                    op_class: classes.class_of(rec.sid),
                    operand_kind: model.operand_kind(module, rec, slot),
                    banded,
                });
                cum.push(total);
            }
        }
        SiteTable { sites, cum }
    }

    /// Point count (width) of the site at `(dyn_idx, slot)`, if it is in
    /// the table. Sites are in trace order with slots ascending, so this is
    /// a binary search.
    pub fn width_of(&self, dyn_idx: u64, slot: usize) -> Option<u32> {
        self.site_of(dyn_idx, slot).map(|s| s.width)
    }

    /// The site at `(dyn_idx, slot)`, if it is in the table (binary search
    /// over the trace order) — used to classify arbitrary specs into their
    /// strata when aggregating shard results.
    pub fn site_of(&self, dyn_idx: u64, slot: usize) -> Option<&InjectionSite> {
        let i = self
            .sites
            .partition_point(|s| (s.dyn_idx, s.slot) < (dyn_idx, slot));
        self.sites
            .get(i)
            .filter(|s| s.dyn_idx == dyn_idx && s.slot == slot)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site exists (trace without register reads).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Total `(site, bit)` pairs.
    pub fn total_bits(&self) -> u64 {
        self.cum.last().copied().unwrap_or(0)
    }

    /// The sites in trace order.
    pub fn sites(&self) -> &[InjectionSite] {
        &self.sites
    }

    /// Exhaustively enumerate every `(site, bit)` spec, in trace order with
    /// bits ascending — the oracle's ground-truth universe. [`Self::sample`]
    /// draws uniformly from exactly this set, so `specs().count()` equals
    /// [`Self::total_bits`] by construction.
    pub fn specs(&self) -> impl Iterator<Item = InjectionSpec> + '_ {
        self.sites.iter().flat_map(|s| {
            (0..s.width as u8).map(move |bit| InjectionSpec {
                dyn_idx: s.dyn_idx,
                operand_slot: s.slot,
                bit,
            })
        })
    }

    /// Draw one `(site, bit)` pair uniformly.
    ///
    /// # Panics
    /// Panics if the table is empty.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> InjectionSpec {
        assert!(!self.is_empty(), "no injectable sites");
        let x = rng.gen_range(0..self.total_bits());
        let i = self.cum.partition_point(|&c| c <= x);
        let site = self.sites[i];
        let prev = if i == 0 { 0 } else { self.cum[i - 1] };
        let bit = (x - prev) as u8;
        InjectionSpec {
            dyn_idx: site.dyn_idx,
            operand_slot: site.slot,
            bit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_interp::{ExecConfig, Interpreter};
    use epvf_ir::{ModuleBuilder, Type, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> SiteTable {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        let a = f.add(Type::I32, Value::i32(1), Value::i32(2)); // consts only: no site
        let b = f.add(Type::I32, a, Value::i32(3)); // one i32 site
        let w = f.zext(Type::I32, Type::I64, b); // one i32 site
        let c = f.add(Type::I64, w, w); // two i64 sites
        f.output(Type::I64, c); // one i64 site
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let r = Interpreter::new(&m, ExecConfig::default())
            .golden_run("main", &[])
            .expect("runs");
        SiteTable::from_trace(&m, r.trace.as_ref().expect("trace"))
    }

    #[test]
    fn enumerates_register_reads_only() {
        let t = table();
        assert_eq!(t.len(), 5);
        assert_eq!(t.total_bits(), 32 + 32 + 64 + 64 + 64);
    }

    #[test]
    fn sampling_respects_widths_and_bounds() {
        let t = table();
        let mut rng = StdRng::seed_from_u64(7);
        let mut hit_wide = 0;
        for _ in 0..2000 {
            let s = t.sample(&mut rng);
            let site = t
                .sites()
                .iter()
                .find(|x| x.dyn_idx == s.dyn_idx && x.slot == s.operand_slot)
                .expect("sampled site exists");
            assert!((s.bit as u32) < site.width, "bit within operand width");
            if site.width == 64 {
                hit_wide += 1;
            }
        }
        // 192 of 256 bits are in 64-bit operands → expect ~75% of draws.
        assert!(hit_wide > 1300 && hit_wide < 1700, "hit_wide = {hit_wide}");
    }

    #[test]
    fn exhaustive_specs_cover_exactly_the_sample_space() {
        let t = table();
        let specs: Vec<_> = t.specs().collect();
        assert_eq!(specs.len() as u64, t.total_bits());
        // Strictly ordered → no duplicates, and every sampled spec is a
        // member of the enumerated universe.
        assert!(specs
            .windows(2)
            .all(|w| (w[0].dyn_idx, w[0].operand_slot, w[0].bit)
                < (w[1].dyn_idx, w[1].operand_slot, w[1].bit)));
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = t.sample(&mut rng);
            assert!(specs.contains(&s));
        }
    }

    #[test]
    fn sites_carry_their_stratum_classes() {
        let t = table();
        // The builder module is pure integer data-flow: adds (Int), a zext
        // (Data/cast), and an output (Data); every operand register is an
        // integer.
        use epvf_core::{OpClass, OperandKind};
        for s in t.sites() {
            assert_eq!(s.operand_kind, OperandKind::Int);
            assert!(matches!(s.op_class, OpClass::Int | OpClass::Data));
            let k = s.class_of_bit(3);
            assert_eq!(k.op, s.op_class);
            assert_eq!(k.band, Some(epvf_core::BitBand::of(3)));
        }
        assert!(t.sites().iter().any(|s| s.op_class == OpClass::Int));
        assert!(t.sites().iter().any(|s| s.op_class == OpClass::Data));
    }

    #[test]
    fn width_of_finds_sites_by_coordinates() {
        let t = table();
        for s in t.sites() {
            assert_eq!(t.width_of(s.dyn_idx, s.slot), Some(s.width));
        }
        assert_eq!(t.width_of(u64::MAX, 0), None);
        assert_eq!(t.width_of(0, 0), None, "dyn 0 reads constants only");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t = table();
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..50).map(|_| t.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..50).map(|_| t.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
