//! Adaptive stratified campaign sampling.
//!
//! The exhaustive oracle runs every `(site, bit)` flip — unimpeachable, but
//! quadratic-feeling on anything real (the paper's own campaigns stop at
//! thousands of *sampled* runs per benchmark, §IV-A). This module closes
//! the gap between "sample a fixed n and hope" and "enumerate everything":
//! it partitions the injection universe into strata (opcode class ×
//! operand kind × bit band, [`SiteClass`]), runs a small pilot in every
//! stratum, then repeatedly allocates batches to strata in proportion to
//! how much variance they still contribute (Neyman allocation), stopping
//! as soon as the 95% CI half-width of both the SDC rate and the crash
//! rate falls under a target. Because fault outcomes are far more
//! homogeneous within a stratum than across the trace, the stratified
//! estimator reaches a given precision in a fraction of the runs uniform
//! sampling needs — and in a *tiny* fraction of exhaustive enumeration.
//!
//! ## Determinism contract
//!
//! A sampled campaign is a pure function of `(module, entry, args,
//! SamplerConfig)`. Strata are visited in [`SiteClass`] order; each
//! stratum's draw order is one seeded shuffle fixed up front; allocations
//! depend only on aggregated integer outcome counts (identical whatever
//! `--threads` did to execution order); apportionment is
//! largest-remainder with index-order tie-breaks. The byte-identical
//! aggregates promise of exhaustive campaigns therefore extends to
//! adaptive ones, and a WAL recorded under `--threads 4` resumes under
//! `--threads 1` (or vice versa) into the same [`SampledCampaign`].
//!
//! ## Estimator
//!
//! With `W_h = N_h / N` the stratum weight, `n_h` draws and `x_h`
//! positives observed, the point estimate is the textbook stratified mean
//! `p̂ = Σ W_h · x_h/n_h` (unbiased under SRSWOR within strata — see the
//! planted-rate property test). Its variance uses the smoothed per-stratum
//! proportion `p̃_h = (x_h + ½)/(n_h + 1)` (so a stratum that has shown
//! only zeros still admits *some* variance until it is exhausted) with
//! finite-population correction:
//! `V̂ = Σ W_h² · (1 − n_h/N_h) · p̃_h(1−p̃_h) / n_h`. Sampling stops when
//! `z₀.₉₇₅ · √V̂ ≤ target_ci` for both outcome rates. Reported intervals
//! come in both Wilson and exact Clopper-Pearson forms, evaluated at the
//! Kish effective sample size `n_eff = p̂(1−p̂)/V̂`.

use crate::campaign::{Campaign, InjOutcome, QuarantineRecord};
use crate::site::SiteTable;
use crate::stats::{clopper_pearson_f, wilson95_f, Z95};
use crate::supervise::RunSession;
use epvf_core::SiteClass;
use epvf_interp::InjectionSpec;
use epvf_telemetry::{Ctr, Progress};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Tuning for an adaptive sampled campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Stop once the 95% CI half-width on *both* the SDC rate and the
    /// crash rate is at or below this.
    pub target_ci: f64,
    /// Pilot draws per stratum (clamped to the stratum population). Every
    /// occupied stratum is pilot-sampled before any adaptive allocation.
    pub pilot: usize,
    /// Ceiling on draws per adaptive round. Smaller rounds re-plan more
    /// often (better allocation, more overhead); the default re-plans
    /// every few hundred runs.
    pub batch: usize,
    /// Hard cap on total draws; `0` means "up to the whole population"
    /// (at which point the campaign has degenerated into an exhaustive
    /// one and stops by exhaustion).
    pub max_runs: usize,
    /// Seed for the per-stratum draw-order shuffles.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            target_ci: 0.02,
            pilot: 16,
            batch: 256,
            max_runs: 0,
            seed: 0,
        }
    }
}

/// One estimated outcome rate with its uncertainty, in every form a
/// downstream consumer might want.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// Stratified point estimate `Σ W_h · x_h/n_h`.
    pub rate: f64,
    /// 95% CI half-width `z₀.₉₇₅·√V̂` from the stratified variance.
    pub half_width: f64,
    /// Wilson score interval at the effective sample size.
    pub wilson: (f64, f64),
    /// Exact Clopper-Pearson interval at the effective sample size (the
    /// conservative bounds calibration checks use).
    pub clopper_pearson: (f64, f64),
    /// Kish effective sample size `p̂(1−p̂)/V̂` (falls back to the run
    /// count when the variance or the rate is degenerate).
    pub n_effective: f64,
}

impl RateEstimate {
    /// Whether `truth` lies inside the Clopper-Pearson bounds.
    pub fn brackets(&self, truth: f64) -> bool {
        let (lo, hi) = self.clopper_pearson;
        lo <= truth && truth <= hi
    }
}

/// Per-stratum tally in the final report.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// Stratum key.
    pub class: SiteClass,
    /// `(site, bit)` population of the stratum.
    pub population: u64,
    /// Draws executed.
    pub executed: usize,
    /// SDC outcomes observed.
    pub sdc: usize,
    /// Crash outcomes observed (any exception class).
    pub crash: usize,
    /// Benign outcomes observed.
    pub benign: usize,
    /// Everything else (hang / detected / supervised kills).
    pub other: usize,
}

impl StratumReport {
    /// Fraction of the stratum population drawn.
    pub fn fill(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.executed as f64 / self.population as f64
        }
    }
}

/// Result of an adaptive sampled campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCampaign {
    /// SDC rate estimate over the whole `(site, bit)` universe.
    pub sdc: RateEstimate,
    /// Crash rate estimate over the whole universe.
    pub crash: RateEstimate,
    /// Per-stratum tallies, in [`SiteClass`] order.
    pub strata: Vec<StratumReport>,
    /// Total draws executed.
    pub executed: usize,
    /// Total `(site, bit)` population.
    pub population: u64,
    /// Adaptive rounds executed (pilot included).
    pub rounds: usize,
    /// Whether the CI target was met (vs stopping on the run cap or
    /// population exhaustion).
    pub converged: bool,
    /// The configured CI target, echoed for reports.
    pub target_ci: f64,
    /// Quarantined runs from the underlying campaign executions (empty
    /// for synthetic executors).
    pub quarantines: Vec<QuarantineRecord>,
}

impl SampledCampaign {
    /// Runs saved versus exhaustive enumeration, as a ratio (`≥ 1`; e.g.
    /// `25.0` = 25× fewer runs).
    pub fn savings(&self) -> f64 {
        if self.executed == 0 {
            1.0
        } else {
            self.population as f64 / self.executed as f64
        }
    }
}

/// What the sampler tells its executor about the round being dispatched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundInfo {
    /// Round number (0 = pilot).
    pub round: usize,
    /// Draws completed before this round.
    pub executed: usize,
    /// Total draws this campaign may still reach (cap-aware), for
    /// progress displays.
    pub cap: usize,
    /// Worst-of-SDC/crash CI half-width after the previous round (`None`
    /// before any estimate exists).
    pub half_width: Option<f64>,
}

/// Internal per-stratum state: the (shuffled) draw order plus tallies.
#[derive(Debug, Clone)]
struct Stratum {
    class: SiteClass,
    /// Draw order; the executed prefix has length `n`.
    specs: Vec<InjectionSpec>,
    n: usize,
    sdc: usize,
    crash: usize,
    benign: usize,
    other: usize,
}

impl Stratum {
    fn population(&self) -> usize {
        self.specs.len()
    }

    fn remaining(&self) -> usize {
        self.specs.len() - self.n
    }

    /// Smoothed proportion `(x + ½)/(n + 1)` for variance/allocation.
    fn smoothed(&self, x: usize) -> f64 {
        (x as f64 + 0.5) / (self.n as f64 + 1.0)
    }

    /// Per-stratum Neyman score: the standard deviation bound over the
    /// two stopping rates, so allocation chases whichever is noisier.
    fn score(&self) -> f64 {
        let vs = self.smoothed(self.sdc) * (1.0 - self.smoothed(self.sdc));
        let vc = self.smoothed(self.crash) * (1.0 - self.smoothed(self.crash));
        vs.max(vc).sqrt()
    }

    fn record(&mut self, outcome: InjOutcome) {
        self.n += 1;
        match outcome {
            InjOutcome::Sdc => self.sdc += 1,
            o if o.is_crash() => self.crash += 1,
            InjOutcome::Benign => self.benign += 1,
            _ => self.other += 1,
        }
    }
}

/// The adaptive engine, decoupled from campaign execution so property
/// tests can drive it with synthetic outcome generators.
#[derive(Debug, Clone)]
pub struct AdaptiveSampler {
    cfg: SamplerConfig,
    strata: Vec<Stratum>,
    population: u64,
}

impl AdaptiveSampler {
    /// Partition a site table's `(site, bit)` universe into strata and fix
    /// each stratum's draw order with one seeded shuffle.
    pub fn from_sites(sites: &SiteTable, cfg: SamplerConfig) -> AdaptiveSampler {
        let mut pools: BTreeMap<SiteClass, Vec<InjectionSpec>> = BTreeMap::new();
        for site in sites.sites() {
            for bit in 0..site.width as u8 {
                pools
                    .entry(site.class_of_bit(bit))
                    .or_default()
                    .push(InjectionSpec {
                        dyn_idx: site.dyn_idx,
                        operand_slot: site.slot,
                        bit,
                    });
            }
        }
        Self::from_pools(pools.into_iter().collect(), cfg)
    }

    /// Build from explicit per-class spec pools (the synthetic-strata
    /// entry point used by the unbiasedness tests). Pools are sorted into
    /// [`SiteClass`] order and shuffled exactly as [`Self::from_sites`]
    /// would.
    pub fn from_pools(
        mut pools: Vec<(SiteClass, Vec<InjectionSpec>)>,
        cfg: SamplerConfig,
    ) -> AdaptiveSampler {
        pools.sort_by_key(|(class, _)| *class);
        pools.retain(|(_, specs)| !specs.is_empty());
        let mut population = 0u64;
        let strata = pools
            .into_iter()
            .enumerate()
            .map(|(h, (class, mut specs))| {
                // Seed mixes the campaign seed with the stratum position
                // (SplitMix64 finalizer) so strata draw independent orders.
                let mut z = cfg.seed ^ (h as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                specs.shuffle(&mut StdRng::seed_from_u64(z ^ (z >> 31)));
                population += specs.len() as u64;
                Stratum {
                    class,
                    specs,
                    n: 0,
                    sdc: 0,
                    crash: 0,
                    benign: 0,
                    other: 0,
                }
            })
            .collect();
        AdaptiveSampler {
            cfg,
            strata,
            population,
        }
    }

    /// Number of occupied strata.
    pub fn n_strata(&self) -> usize {
        self.strata.len()
    }

    /// Total `(site, bit)` population.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Effective run cap: configured `max_runs`, clamped to the
    /// population (0 = population).
    fn cap(&self) -> usize {
        let pop = self.population as usize;
        if self.cfg.max_runs == 0 {
            pop
        } else {
            self.cfg.max_runs.min(pop)
        }
    }

    /// Stratified estimate of the rate whose per-stratum count `count_of`
    /// extracts. Strata never sampled (possible only when the run cap cut
    /// the pilot short) contribute a maximally uncertain `p̃ = ½`.
    fn estimate(&self, executed: usize, count_of: impl Fn(&Stratum) -> usize) -> RateEstimate {
        let n_total = self.population as f64;
        let mut rate = 0.0;
        let mut var = 0.0;
        for s in &self.strata {
            let w = s.population() as f64 / n_total;
            if s.n == 0 {
                rate += w * 0.5;
                var += w * w * 0.25;
                continue;
            }
            rate += w * count_of(s) as f64 / s.n as f64;
            let pt = s.smoothed(count_of(s));
            let fpc = 1.0 - s.n as f64 / s.population() as f64;
            var += w * w * fpc * pt * (1.0 - pt) / s.n as f64;
        }
        let half_width = Z95 * var.sqrt();
        let n_effective = if var > 0.0 && rate > 0.0 && rate < 1.0 {
            (rate * (1.0 - rate) / var).min(n_total)
        } else {
            executed.max(1) as f64
        };
        RateEstimate {
            rate,
            half_width,
            wilson: wilson95_f(rate * n_effective, n_effective),
            clopper_pearson: clopper_pearson_f(rate * n_effective, n_effective),
            n_effective,
        }
    }

    fn sdc_estimate(&self, executed: usize) -> RateEstimate {
        self.estimate(executed, |s| s.sdc)
    }

    fn crash_estimate(&self, executed: usize) -> RateEstimate {
        self.estimate(executed, |s| s.crash)
    }

    /// Plan the next round: per-stratum draw counts summing to at most
    /// `budget`. Round 0 pilots every stratum; later rounds run Neyman
    /// allocation (`n_h ∝ N_h·s_h`) over observed scores, apportioned by
    /// largest remainder with index-order tie-breaks, capped at each
    /// stratum's remaining population, leftovers spilled deterministically.
    fn plan(&self, round: usize, budget: usize) -> Vec<usize> {
        let mut alloc = vec![0usize; self.strata.len()];
        if budget == 0 {
            return alloc;
        }
        if round == 0 {
            let mut left = budget;
            for (h, s) in self.strata.iter().enumerate() {
                let want = self.cfg.pilot.max(1).min(s.remaining()).min(left);
                alloc[h] = want;
                left -= want;
                if left == 0 {
                    break;
                }
            }
            return alloc;
        }
        // Hybrid allocation: half the budget proportional to stratum
        // size, half Neyman (`∝ N_h·s_h`). Pure Neyman starves a stratum
        // whose pilot happened to look homogeneous (observed p near 0 or
        // 1 → tiny estimated variance → no further draws), freezing an
        // unlucky pilot's error into the estimate; the proportional floor
        // keeps every stratum accumulating evidence while Neyman still
        // steers the other half toward the noisy ones.
        let mut prop: Vec<f64> = self
            .strata
            .iter()
            .map(|s| {
                if s.remaining() == 0 {
                    0.0
                } else {
                    s.population() as f64
                }
            })
            .collect();
        let mut ney: Vec<f64> = self
            .strata
            .iter()
            .enumerate()
            .map(|(h, s)| prop[h] * s.score())
            .collect();
        let (tp, tn) = (prop.iter().sum::<f64>(), ney.iter().sum::<f64>());
        if tp <= 0.0 {
            return alloc;
        }
        for p in &mut prop {
            *p /= tp;
        }
        if tn > 0.0 {
            for n in &mut ney {
                *n /= tn;
            }
        }
        let weights: Vec<f64> = prop
            .iter()
            .zip(&ney)
            .map(|(p, n)| 0.5 * p + 0.5 * n)
            .collect();
        let total_w: f64 = weights.iter().sum();
        if total_w <= 0.0 {
            return alloc;
        }
        // Ideal real-valued shares, floored; remainders ranked for the
        // leftover budget.
        let mut left = budget;
        let mut rema: Vec<(usize, f64)> = Vec::with_capacity(self.strata.len());
        for (h, s) in self.strata.iter().enumerate() {
            let ideal = budget as f64 * weights[h] / total_w;
            let take = (ideal.floor() as usize).min(s.remaining()).min(left);
            alloc[h] = take;
            left -= take;
            rema.push((h, ideal - ideal.floor()));
        }
        // Largest remainder first; ties broken by stratum index (sort is
        // stable and `rema` is in index order).
        rema.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(h, _) in &rema {
            if left == 0 {
                break;
            }
            if self.strata[h].remaining() > alloc[h] {
                alloc[h] += 1;
                left -= 1;
            }
        }
        // Spill whatever is still unplaced (every high-score stratum
        // full) into any stratum with capacity, in index order.
        for (h, s) in self.strata.iter().enumerate() {
            while left > 0 && alloc[h] < s.remaining() {
                alloc[h] += 1;
                left -= 1;
            }
        }
        alloc
    }

    /// Run the adaptive campaign. `exec` receives each round's spec batch
    /// (strata in order, each stratum's draws contiguous) and must return
    /// one outcome per spec, in order. Returns the final report.
    pub fn run<E>(mut self, mut exec: E) -> SampledCampaign
    where
        E: FnMut(&[InjectionSpec], &RoundInfo) -> Vec<InjOutcome>,
    {
        let cap = self.cap();
        epvf_telemetry::peak(Ctr::SamplerStrata, self.strata.len() as u64);
        let mut executed = 0usize;
        let mut rounds = 0usize;
        let mut converged = false;
        let mut half_width = None;
        while executed < cap && !converged {
            let alloc = self.plan(rounds, self.cfg.batch.max(1).min(cap - executed));
            let planned: usize = alloc.iter().sum();
            if planned == 0 {
                break; // every stratum exhausted
            }
            let mut specs = Vec::with_capacity(planned);
            let mut owners = Vec::with_capacity(planned);
            for (h, &k) in alloc.iter().enumerate() {
                let s = &self.strata[h];
                specs.extend_from_slice(&s.specs[s.n..s.n + k]);
                owners.extend(std::iter::repeat_n(h, k));
            }
            let info = RoundInfo {
                round: rounds,
                executed,
                cap,
                half_width,
            };
            let outcomes = exec(&specs, &info);
            assert_eq!(
                outcomes.len(),
                specs.len(),
                "executor must return one outcome per spec"
            );
            for (&h, &o) in owners.iter().zip(&outcomes) {
                self.strata[h].record(o);
            }
            executed += planned;
            rounds += 1;
            epvf_telemetry::add(Ctr::SamplerRounds, 1);
            epvf_telemetry::add(Ctr::SamplerAllocated, planned as u64);
            let hw_sdc = self.sdc_estimate(executed).half_width;
            let hw_crash = self.crash_estimate(executed).half_width;
            let worst = hw_sdc.max(hw_crash);
            half_width = Some(worst);
            converged = worst <= self.cfg.target_ci;
        }
        if let Some(hw) = half_width {
            epvf_telemetry::peak(Ctr::SamplerCiHalfWidthPpm, (hw * 1e6).round() as u64);
        }
        let sdc = self.sdc_estimate(executed);
        let crash = self.crash_estimate(executed);
        let strata = self
            .strata
            .iter()
            .map(|s| StratumReport {
                class: s.class,
                population: s.population() as u64,
                executed: s.n,
                sdc: s.sdc,
                crash: s.crash,
                benign: s.benign,
                other: s.other,
            })
            .collect();
        SampledCampaign {
            sdc,
            crash,
            strata,
            executed,
            population: self.population,
            rounds,
            converged,
            target_ci: self.cfg.target_ci,
            quarantines: Vec::new(),
        }
    }
}

impl Campaign<'_> {
    /// Run an adaptive sampled campaign (see the module docs for the
    /// estimator and stopping rule).
    pub fn run_adaptive(&self, cfg: SamplerConfig) -> SampledCampaign {
        self.run_adaptive_session(cfg, &RunSession::default())
    }

    /// [`Self::run_adaptive`] with WAL persistence/resume. The session's
    /// `recovered` map is keyed by *global run index* — the position in
    /// the campaign's deterministic execution sequence, exactly what
    /// [`crate::WalSink`] records when threaded through here — so a
    /// resumed campaign replays its allocation decisions from recovered
    /// outcomes and only executes what the log is missing.
    pub fn run_adaptive_session(
        &self,
        cfg: SamplerConfig,
        session: &RunSession<'_>,
    ) -> SampledCampaign {
        let sampler = AdaptiveSampler::from_sites(self.sites(), cfg);
        let cap = sampler.cap();
        let progress = Progress::new(&format!("sample {}", self.entry()), cap as u64);
        let mut quarantines: Vec<QuarantineRecord> = Vec::new();
        let mut fresh_runs = 0u64;
        let mut result = sampler.run(|specs, info| {
            progress.set_status(&match info.half_width {
                Some(hw) => format!("r{} ci ±{:.4}→±{:.4}", info.round, hw, cfg.target_ci),
                None => format!("r{} pilot", info.round),
            });
            progress.tick(info.executed as u64);
            // Slice this round's recovered outcomes out of the global map
            // and rebase them onto the round-local spec indices.
            let base = session.index_base + info.executed;
            let sub = RunSession {
                recovered: session
                    .recovered
                    .range(base..base + specs.len())
                    .map(|(&k, &v)| (k - base, v))
                    .collect(),
                wal: session.wal,
                index_base: base,
                index_stride: 1,
                quiet: true,
            };
            fresh_runs += (specs.len() - sub.recovered.len()) as u64;
            let res = self.run_specs_session(specs, &sub);
            quarantines.extend(res.quarantines);
            res.runs.into_iter().map(|(_, o)| o).collect()
        });
        epvf_telemetry::add(Ctr::SamplerExecuted, fresh_runs);
        progress.finish();
        result.quarantines = quarantines;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_core::{BitBand, OpClass, OperandKind};

    fn class(op: OpClass, band: BitBand) -> SiteClass {
        let band = Some(band);
        SiteClass {
            op,
            operand: OperandKind::Int,
            band,
        }
    }

    fn pool(n: usize, tag: u64) -> Vec<InjectionSpec> {
        (0..n)
            .map(|i| InjectionSpec {
                dyn_idx: tag * 1_000_000 + i as u64,
                operand_slot: 0,
                bit: (i % 8) as u8,
            })
            .collect()
    }

    /// Deterministic planted-rate outcome: SDC iff a spec-keyed hash falls
    /// under the stratum's rate. SRSWOR over the pool then observes the
    /// pool's *exact* positive count in expectation-free form.
    fn planted(rates: &[(u64, f64)]) -> impl Fn(&InjectionSpec) -> InjOutcome + '_ {
        move |spec| {
            let tag = spec.dyn_idx / 1_000_000;
            let rate = rates
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|(_, r)| *r)
                .unwrap_or(0.0);
            let mut z = spec.dyn_idx ^ 0xd6e8_feb8_6659_fd93;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            if (z as f64 / u64::MAX as f64) < rate {
                InjOutcome::Sdc
            } else {
                InjOutcome::Benign
            }
        }
    }

    fn planted_pool_rate(
        specs: &[InjectionSpec],
        outcome: &dyn Fn(&InjectionSpec) -> InjOutcome,
    ) -> f64 {
        let pos = specs
            .iter()
            .filter(|s| outcome(s) == InjOutcome::Sdc)
            .count();
        pos as f64 / specs.len() as f64
    }

    #[test]
    fn pilot_touches_every_stratum() {
        let sampler = AdaptiveSampler::from_pools(
            vec![
                (class(OpClass::Int, BitBand::B0), pool(100, 1)),
                (class(OpClass::Mem, BitBand::B8), pool(50, 2)),
                (class(OpClass::Data, BitBand::B16), pool(5, 3)),
            ],
            SamplerConfig {
                target_ci: 1.0, // converges immediately after the pilot
                pilot: 8,
                ..SamplerConfig::default()
            },
        );
        let report = sampler.run(|specs, info| {
            assert_eq!(info.round, 0);
            vec![InjOutcome::Benign; specs.len()]
        });
        assert_eq!(report.rounds, 1);
        assert!(report.converged);
        let fills: Vec<usize> = report.strata.iter().map(|s| s.executed).collect();
        assert_eq!(fills, vec![8, 8, 5]); // pilot, clamped to population
    }

    #[test]
    fn exhausts_population_when_target_unreachable() {
        let sampler = AdaptiveSampler::from_pools(
            vec![(class(OpClass::Int, BitBand::B0), pool(40, 1))],
            SamplerConfig {
                target_ci: 1e-9,
                pilot: 4,
                batch: 16,
                ..SamplerConfig::default()
            },
        );
        let report = sampler.run(|specs, _| {
            specs
                .iter()
                .map(|s| {
                    if s.dyn_idx % 2 == 0 {
                        InjOutcome::Sdc
                    } else {
                        InjOutcome::Benign
                    }
                })
                .collect()
        });
        // Exhaustion: every spec executed exactly once, fpc zeroes the
        // variance, the estimate is the exact population rate.
        assert_eq!(report.executed, 40);
        assert!(report.converged, "zero variance at exhaustion converges");
        assert_eq!(report.sdc.rate, 0.5);
        assert_eq!(report.sdc.half_width, 0.0);
    }

    #[test]
    fn respects_run_cap() {
        let sampler = AdaptiveSampler::from_pools(
            vec![(class(OpClass::Int, BitBand::B0), pool(1000, 1))],
            SamplerConfig {
                target_ci: 1e-9,
                pilot: 8,
                batch: 32,
                max_runs: 100,
                ..SamplerConfig::default()
            },
        );
        let report = sampler.run(|specs, _| vec![InjOutcome::Benign; specs.len()]);
        assert_eq!(report.executed, 100);
        assert!(!report.converged);
    }

    #[test]
    fn identical_reports_for_identical_configs() {
        let build = || {
            AdaptiveSampler::from_pools(
                vec![
                    (class(OpClass::Int, BitBand::B0), pool(300, 1)),
                    (class(OpClass::Mem, BitBand::B8), pool(200, 2)),
                ],
                SamplerConfig {
                    target_ci: 0.05,
                    seed: 42,
                    ..SamplerConfig::default()
                },
            )
        };
        let rates = [(1u64, 0.3), (2u64, 0.7)];
        let outcome = planted(&rates);
        let a = build().run(|specs, _| specs.iter().map(&outcome).collect());
        let b = build().run(|specs, _| specs.iter().map(&outcome).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_draw_order_but_not_population() {
        let mk = |seed| {
            AdaptiveSampler::from_pools(
                vec![(class(OpClass::Int, BitBand::B0), pool(64, 1))],
                SamplerConfig {
                    seed,
                    ..SamplerConfig::default()
                },
            )
        };
        let (a, b) = (mk(1), mk(2));
        assert_eq!(a.population(), b.population());
        assert_ne!(
            a.strata[0].specs, b.strata[0].specs,
            "different seeds shuffle differently"
        );
        let mut sa = a.strata[0].specs.clone();
        let mut sb = b.strata[0].specs.clone();
        sa.sort_by_key(|s| (s.dyn_idx, s.operand_slot, s.bit));
        sb.sort_by_key(|s| (s.dyn_idx, s.operand_slot, s.bit));
        assert_eq!(sa, sb, "same universe under any seed");
    }

    #[test]
    fn sdc_estimator_is_unbiased_and_calibrated() {
        // Two synthetic strata with very different planted SDC rates; run
        // the same campaign under 60 seeds. Unbiasedness: the mean
        // estimate converges on the exact population rate. Calibration:
        // the reported Clopper-Pearson interval (a conservative 95%
        // statement) brackets the truth in at least 90% of runs.
        let rates = [(1u64, 0.3), (2u64, 0.7)];
        let outcome = planted(&rates);
        let pools = vec![
            (class(OpClass::Int, BitBand::B0), pool(150, 1)),
            (class(OpClass::Mem, BitBand::B8), pool(250, 2)),
        ];
        let all: Vec<InjectionSpec> = pools.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        let truth = planted_pool_rate(&all, &outcome);

        const SEEDS: u64 = 60;
        let mut sum = 0.0;
        let mut bracketed = 0;
        for seed in 0..SEEDS {
            let report = AdaptiveSampler::from_pools(
                pools.clone(),
                SamplerConfig {
                    target_ci: 0.05,
                    pilot: 12,
                    batch: 48,
                    seed,
                    ..SamplerConfig::default()
                },
            )
            .run(|specs, _| specs.iter().map(&outcome).collect());
            assert!(
                report.executed < all.len(),
                "sampling must beat exhaustion at this CI target"
            );
            sum += report.sdc.rate;
            if report.sdc.brackets(truth) {
                bracketed += 1;
            }
        }
        let mean = sum / SEEDS as f64;
        assert!(
            (mean - truth).abs() < 0.02,
            "mean estimate {mean} vs truth {truth}"
        );
        assert!(
            bracketed * 10 >= SEEDS as usize * 9,
            "only {bracketed}/{SEEDS} runs bracketed the truth"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Unbiasedness + calibration on synthetic strata with planted SDC
        /// rates: the stratified estimate must land within its own
        /// reported Clopper-Pearson interval of the exact population rate
        /// (conservative 95% bounds; checked across many draws the
        /// failure probability is negligible), and at full exhaustion the
        /// estimate is *exactly* the population rate.
        #[test]
        fn planted_rates_are_recovered_within_ci(
            seed in 0u64..1000,
            r1 in 0usize..100,
            r2 in 0usize..100,
            n1 in 50usize..200,
            n2 in 50usize..200,
        ) {
            let rates = [(1u64, r1 as f64 / 100.0), (2u64, r2 as f64 / 100.0)];
            let pools = vec![
                (class(OpClass::Int, BitBand::B0), pool(n1, 1)),
                (class(OpClass::Mem, BitBand::B8), pool(n2, 2)),
            ];
            let outcome = planted(&rates);
            let all: Vec<InjectionSpec> =
                pools.iter().flat_map(|(_, s)| s.iter().copied()).collect();
            let truth = planted_pool_rate(&all, &outcome);

            let cfg = SamplerConfig {
                target_ci: 0.04,
                pilot: 12,
                batch: 64,
                seed,
                ..SamplerConfig::default()
            };
            let report = AdaptiveSampler::from_pools(pools.clone(), cfg)
                .run(|specs, _| specs.iter().map(&outcome).collect());
            proptest::prop_assert!(report.executed > 0);
            // Per-case the CI is a 95% statement, so test it at 3.3σ
            // (99.9%) — the aggregate 95% calibration rate is asserted
            // over many seeds in `sdc_estimator_is_unbiased_and_calibrated`.
            let sigma = (report.sdc.half_width / Z95).max(1e-12);
            proptest::prop_assert!(
                (report.sdc.rate - truth).abs() <= (3.3 * sigma).max(1e-9),
                "estimate {} further than 3.3 sigma ({}) from truth {} (executed {}/{})",
                report.sdc.rate, sigma, truth, report.executed, report.population
            );

            // Exhaustive degeneration recovers the exact rate.
            let full = AdaptiveSampler::from_pools(pools, SamplerConfig {
                target_ci: 0.0,
                seed,
                ..SamplerConfig::default()
            })
            .run(|specs, _| specs.iter().map(&outcome).collect());
            proptest::prop_assert!(full.executed as u64 == full.population);
            proptest::prop_assert!((full.sdc.rate - truth).abs() < 1e-12);
        }
    }
}
