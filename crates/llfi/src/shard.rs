//! Campaign sharding: deterministic partition of a campaign's spec list
//! across independent OS processes, and the merge algebra that folds the
//! shards' outcomes back into an aggregate byte-identical to the
//! single-process run.
//!
//! A campaign is pinned by its fingerprint (module text, entry, args, and
//! the seeded spec list — see [`wal_fingerprint`](crate::wal_fingerprint)),
//! so *which* runs exist is decided before any shard starts. Sharding only
//! partitions the draw order: shard `i` of `S` owns every global spec index
//! `g` with `g % S == i` (strided, so all shards see the same mix of early
//! and late injection points and finish in comparable time). Each shard
//! executes its slice with its own WAL — records carry the *global* index —
//! and a merge recombines the WALs into the full outcome vector. Because
//! every run's outcome is a pure function of its spec, the merged
//! [`CampaignResult`] equals the single-process one exactly; the summary,
//! telemetry outcome counters, and confusion matrix follow.
//!
//! Two layers of algebra live here:
//!
//! - [`ShardOutcomes`]: the raw partial function `global index → (spec,
//!   outcome)`. Merging is a disjoint-union (duplicate indices must agree);
//!   [`ShardOutcomes::into_result`] checks the union is total over the spec
//!   list and re-derives the [`CampaignResult`].
//! - [`CampaignAggregate`]: the order-insensitive statistics (outcome-class
//!   counts, crash-kind cells, recall confusion cells, per-stratum tallies).
//!   Its [`merge`](CampaignAggregate::merge) is associative and commutative
//!   with [`CampaignAggregate::empty`] as identity, mirroring the telemetry
//!   snapshot algebra — the property suite in `epvf-oracle` exercises both
//!   laws plus shard-count invariance over the generated-program corpus.

use crate::accuracy::{recall_study, RecallReport};
use crate::campaign::{CampaignResult, InjOutcome};
use crate::site::SiteTable;
use crate::wal::RecoveredWal;
use epvf_core::{CrashMap, SiteClass};
use epvf_interp::{CrashKind, InjectionSpec};
use std::collections::BTreeMap;
use std::fmt;

/// One shard's coordinates in a partition: `index` of `of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    of: usize,
}

impl ShardSpec {
    /// The trivial 1-way partition (shard 0 of 1 = the whole campaign).
    pub const WHOLE: ShardSpec = ShardSpec { index: 0, of: 1 };

    /// Validate `index < of` (and `of >= 1`).
    pub fn new(index: usize, of: usize) -> Option<ShardSpec> {
        (of >= 1 && index < of).then_some(ShardSpec { index, of })
    }

    /// This shard's position in the partition.
    pub fn index(self) -> usize {
        self.index
    }

    /// Total number of shards in the partition.
    pub fn of(self) -> usize {
        self.of
    }

    /// Whether this shard owns global spec index `g`.
    pub fn owns(self, global: usize) -> bool {
        global % self.of == self.index
    }

    /// Global index of this shard's `local`-th owned spec.
    pub fn to_global(self, local: usize) -> usize {
        local * self.of + self.index
    }

    /// Position of owned global index `g` within this shard's slice.
    /// Callers must check [`Self::owns`] first.
    pub fn to_local(self, global: usize) -> usize {
        debug_assert!(self.owns(global));
        global / self.of
    }

    /// Global indices owned by this shard out of a campaign of `n` specs,
    /// ascending.
    pub fn indices(self, n: usize) -> impl Iterator<Item = usize> {
        (self.index..n).step_by(self.of)
    }

    /// Number of specs this shard owns out of `n`.
    pub fn count(self, n: usize) -> usize {
        (n + self.of - 1 - self.index) / self.of
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

/// Why shard outcomes could not be merged into a campaign result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Two shards recorded different `(spec, outcome)` payloads for the
    /// same global index — the inputs cannot come from one partition of
    /// one campaign.
    Conflict {
        /// The contested global spec index.
        index: usize,
    },
    /// The union does not cover this global index: a shard is missing or
    /// was interrupted before finishing its slice.
    Incomplete {
        /// First uncovered global spec index.
        index: usize,
        /// Covered / total counts, for the error message.
        have: usize,
        /// Total specs the campaign draws.
        want: usize,
    },
    /// A record's index lies outside the campaign's spec list.
    OutOfRange {
        /// The out-of-range global index.
        index: usize,
        /// Number of specs the campaign draws.
        n: usize,
    },
    /// A record's stored spec differs from the campaign's drawn spec at
    /// that index — the WAL belongs to a different seed or spec list.
    SpecMismatch {
        /// The global index whose spec disagrees.
        index: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Conflict { index } => {
                write!(f, "shards disagree about run {index} (conflicting records)")
            }
            MergeError::Incomplete { index, have, want } => write!(
                f,
                "merged shards cover {have}/{want} runs; first missing run is {index} \
                 (a shard is missing or unfinished — resume it first)"
            ),
            MergeError::OutOfRange { index, n } => write!(
                f,
                "record index {index} is outside the campaign's {n} specs"
            ),
            MergeError::SpecMismatch { index } => write!(
                f,
                "record {index} stores a different spec than the campaign draws there \
                 (wrong seed or spec list)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Partial campaign outcomes keyed by *global* spec index — what one shard
/// (or any union of shards) knows. The merge is a disjoint union; agreeing
/// duplicates are tolerated (merging a shard with itself is idempotent),
/// disagreeing ones are a [`MergeError::Conflict`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardOutcomes {
    outcomes: BTreeMap<usize, (InjectionSpec, InjOutcome)>,
}

impl ShardOutcomes {
    /// No outcomes — the merge identity.
    pub fn empty() -> ShardOutcomes {
        ShardOutcomes::default()
    }

    /// Wrap a finished shard run: `result` holds the shard's slice in
    /// local draw order; indices are lifted back to global via `shard`.
    pub fn from_run(shard: ShardSpec, result: &CampaignResult) -> ShardOutcomes {
        ShardOutcomes {
            outcomes: result
                .runs
                .iter()
                .enumerate()
                .map(|(local, &(spec, o))| (shard.to_global(local), (spec, o)))
                .collect(),
        }
    }

    /// Wrap outcomes recovered from a shard WAL (records already carry
    /// global indices).
    pub fn from_recovered(rec: &RecoveredWal) -> ShardOutcomes {
        ShardOutcomes {
            outcomes: rec.outcomes.clone(),
        }
    }

    /// The known `global index → (spec, outcome)` entries.
    pub fn outcomes(&self) -> &BTreeMap<usize, (InjectionSpec, InjOutcome)> {
        &self.outcomes
    }

    /// Number of known outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Disjoint-union merge (associative, commutative, identity
    /// [`Self::empty`]).
    ///
    /// # Errors
    /// [`MergeError::Conflict`] if the same index carries different
    /// payloads in the two operands.
    pub fn merge(mut self, other: ShardOutcomes) -> Result<ShardOutcomes, MergeError> {
        for (index, payload) in other.outcomes {
            match self.outcomes.insert(index, payload) {
                Some(prev) if prev != payload => return Err(MergeError::Conflict { index }),
                _ => {}
            }
        }
        Ok(self)
    }

    /// Check totality over `specs` and materialize the single-process
    /// [`CampaignResult`]: every global index `0..specs.len()` must be
    /// covered, carry exactly the drawn spec, and nothing outside the
    /// range may be present. Quarantine payloads are not persisted in
    /// WALs, so the rebuilt result carries outcome classifications only
    /// (`Quarantined` runs keep their class; the payload list is empty).
    ///
    /// # Errors
    /// [`MergeError::OutOfRange`], [`MergeError::SpecMismatch`], or
    /// [`MergeError::Incomplete`].
    pub fn into_result(self, specs: &[InjectionSpec]) -> Result<CampaignResult, MergeError> {
        let want = specs.len();
        if let Some((&index, _)) = self.outcomes.range(want..).next() {
            return Err(MergeError::OutOfRange { index, n: want });
        }
        let have = self.outcomes.len();
        let mut runs = Vec::with_capacity(want);
        for (index, &expected) in specs.iter().enumerate() {
            let Some(&(spec, outcome)) = self.outcomes.get(&index) else {
                return Err(MergeError::Incomplete { index, have, want });
            };
            if spec != expected {
                return Err(MergeError::SpecMismatch { index });
            }
            runs.push((spec, outcome));
        }
        Ok(CampaignResult {
            runs,
            quarantines: Vec::new(),
        })
    }

    /// Salvage merge: like [`Self::into_result`] but tolerating gaps.
    /// Covered indices must still carry exactly the drawn spec and stay
    /// in range — a salvage is a *prefix of the truth*, never a guess —
    /// and the returned result holds only the runs actually recovered,
    /// alongside the count of specs that stayed missing. Used by
    /// `epvf run-sharded --allow-partial` when a shard exhausted its
    /// retry budget and only its WAL prefix survives.
    ///
    /// # Errors
    /// [`MergeError::OutOfRange`] or [`MergeError::SpecMismatch`];
    /// never [`MergeError::Incomplete`] (gaps are the point).
    pub fn into_partial_result(
        self,
        specs: &[InjectionSpec],
    ) -> Result<(CampaignResult, usize), MergeError> {
        let want = specs.len();
        if let Some((&index, _)) = self.outcomes.range(want..).next() {
            return Err(MergeError::OutOfRange { index, n: want });
        }
        let mut runs = Vec::with_capacity(self.outcomes.len());
        for (&index, &(spec, outcome)) in &self.outcomes {
            if spec != specs[index] {
                return Err(MergeError::SpecMismatch { index });
            }
            runs.push((spec, outcome));
        }
        let missing = want - runs.len();
        Ok((
            CampaignResult {
                runs,
                quarantines: Vec::new(),
            },
            missing,
        ))
    }
}

/// Per-stratum outcome tally (the sampler's strata, aggregated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StratumTally {
    /// Runs landing in this stratum.
    pub n: u64,
    /// Of those, SDCs.
    pub sdc: u64,
    /// Of those, crashes (any class).
    pub crash: u64,
}

impl StratumTally {
    fn merge(self, other: StratumTally) -> StratumTally {
        StratumTally {
            n: self.n + other.n,
            sdc: self.sdc + other.sdc,
            crash: self.crash + other.crash,
        }
    }
}

/// Order-insensitive campaign statistics with an associative, commutative
/// merge — the `CampaignResult` face of the telemetry snapshot algebra.
///
/// Outcome-class counts partition `n` (the conservation law the telemetry
/// checker enforces on the matching counters); crash kinds are the paper's
/// Table II cells `[SF, A, MMA, AE]`; the confusion cells are the recall
/// study's `TP`/`FN` split of crashing runs against a crash map; strata
/// tally SDC/crash per [`SiteClass`], the sampler's stratification key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignAggregate {
    /// Total runs aggregated.
    pub n: u64,
    /// Outcome-class counts in fixed order: benign, SDC, crash, hang,
    /// detected, timed-out, quarantined. Sums to `n`.
    pub classes: [u64; 7],
    /// Crash-class counts `[SF, A, MMA, AE]` (Table II order).
    pub crash_kinds: [u64; 4],
    /// Recall confusion cells (crashing runs the crash map predicted /
    /// missed); both zero when no crash map was supplied.
    pub confusion: RecallReport,
    /// Per-stratum tallies keyed by the sampler's [`SiteClass`].
    pub strata: BTreeMap<SiteClass, StratumTally>,
}

/// Index of an outcome's class slot in [`CampaignAggregate::classes`].
fn class_slot(o: InjOutcome) -> usize {
    match o {
        InjOutcome::Benign => 0,
        InjOutcome::Sdc => 1,
        InjOutcome::Crash(_) => 2,
        InjOutcome::Hang => 3,
        InjOutcome::Detected => 4,
        InjOutcome::TimedOut(_) => 5,
        InjOutcome::Quarantined => 6,
    }
}

impl CampaignAggregate {
    /// Names of the class slots, matching [`Self::classes`] order.
    pub const CLASS_NAMES: [&'static str; 7] = [
        "benign",
        "sdc",
        "crash",
        "hang",
        "detected",
        "timed_out",
        "quarantined",
    ];

    /// The merge identity: zero runs everywhere.
    pub fn empty() -> CampaignAggregate {
        CampaignAggregate::default()
    }

    /// Aggregate one (full or shard-local) campaign result. `sites`
    /// classifies each run into its stratum; `crash_map` (when given)
    /// fills the recall confusion cells.
    pub fn from_result(
        result: &CampaignResult,
        sites: &SiteTable,
        crash_map: Option<&CrashMap>,
    ) -> CampaignAggregate {
        let mut agg = CampaignAggregate::empty();
        for &(spec, outcome) in &result.runs {
            agg.n += 1;
            agg.classes[class_slot(outcome)] += 1;
            if let InjOutcome::Crash(kind) = outcome {
                agg.crash_kinds[match kind {
                    CrashKind::Segfault => 0,
                    CrashKind::Abort => 1,
                    CrashKind::Misaligned => 2,
                    CrashKind::Arithmetic => 3,
                }] += 1;
            }
            if let Some(site) = sites.site_of(spec.dyn_idx, spec.operand_slot) {
                let tally = agg.strata.entry(site.class_of_bit(spec.bit)).or_default();
                tally.n += 1;
                tally.sdc += u64::from(outcome == InjOutcome::Sdc);
                tally.crash += u64::from(outcome.is_crash());
            }
        }
        if let Some(map) = crash_map {
            agg.confusion = recall_study(result, map);
        }
        agg
    }

    /// Associative, commutative merge ([`Self::empty`] is the identity):
    /// every cell adds.
    pub fn merge(&self, other: &CampaignAggregate) -> CampaignAggregate {
        let mut classes = self.classes;
        for (a, b) in classes.iter_mut().zip(other.classes) {
            *a += b;
        }
        let mut crash_kinds = self.crash_kinds;
        for (a, b) in crash_kinds.iter_mut().zip(other.crash_kinds) {
            *a += b;
        }
        let mut strata = self.strata.clone();
        for (&k, &t) in &other.strata {
            let slot = strata.entry(k).or_default();
            *slot = slot.merge(t);
        }
        CampaignAggregate {
            n: self.n + other.n,
            classes,
            crash_kinds,
            confusion: RecallReport {
                true_positives: self.confusion.true_positives + other.confusion.true_positives,
                false_negatives: self.confusion.false_negatives + other.confusion.false_negatives,
            },
            strata,
        }
    }

    /// Internal consistency: class counts partition `n`, crash kinds sum
    /// to the crash class, confusion cells never exceed crashes, and
    /// strata never count more runs than exist.
    pub fn check(&self) -> Result<(), String> {
        let class_sum: u64 = self.classes.iter().sum();
        if class_sum != self.n {
            return Err(format!("classes sum {class_sum} != n {}", self.n));
        }
        let kinds: u64 = self.crash_kinds.iter().sum();
        if kinds != self.classes[2] {
            return Err(format!(
                "crash kinds {kinds} != crashes {}",
                self.classes[2]
            ));
        }
        let conf = (self.confusion.true_positives + self.confusion.false_negatives) as u64;
        if conf > self.classes[2] {
            return Err(format!("confusion {conf} > crashes {}", self.classes[2]));
        }
        let strata_n: u64 = self.strata.values().map(|t| t.n).sum();
        if strata_n > self.n {
            return Err(format!("strata n {strata_n} > n {}", self.n));
        }
        if self.strata.values().any(|t| t.sdc > t.n || t.crash > t.n) {
            return Err("a stratum tallies more SDCs/crashes than runs".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_interp::TimeoutKind;

    fn spec(dyn_idx: u64, slot: usize, bit: u8) -> InjectionSpec {
        InjectionSpec {
            dyn_idx,
            operand_slot: slot,
            bit,
        }
    }

    #[test]
    fn strided_partition_is_exact() {
        for of in 1..=7 {
            for n in [0usize, 1, 5, 16, 17] {
                let mut seen = vec![false; n];
                for index in 0..of {
                    let shard = ShardSpec::new(index, of).unwrap();
                    let idxs: Vec<usize> = shard.indices(n).collect();
                    assert_eq!(idxs.len(), shard.count(n), "{shard} over {n}");
                    for (local, &g) in idxs.iter().enumerate() {
                        assert!(shard.owns(g));
                        assert_eq!(shard.to_global(local), g);
                        assert_eq!(shard.to_local(g), local);
                        assert!(!seen[g], "index {g} owned twice");
                        seen[g] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "partition covers 0..{n}");
            }
        }
    }

    #[test]
    fn shard_spec_validates() {
        assert!(ShardSpec::new(0, 0).is_none());
        assert!(ShardSpec::new(3, 3).is_none());
        assert!(ShardSpec::new(2, 3).is_some());
        assert_eq!(ShardSpec::WHOLE, ShardSpec::new(0, 1).unwrap());
        assert_eq!(ShardSpec::new(2, 5).unwrap().to_string(), "2/5");
    }

    fn outcomes(entries: &[(usize, InjectionSpec, InjOutcome)]) -> ShardOutcomes {
        let mut s = ShardOutcomes::empty();
        for &(i, sp, o) in entries {
            s.outcomes.insert(i, (sp, o));
        }
        s
    }

    #[test]
    fn shard_outcome_union_rebuilds_the_full_result() {
        let specs = [spec(1, 0, 0), spec(2, 0, 1), spec(3, 1, 2), spec(4, 0, 3)];
        let a = outcomes(&[
            (0, specs[0], InjOutcome::Benign),
            (2, specs[2], InjOutcome::Sdc),
        ]);
        let b = outcomes(&[
            (1, specs[1], InjOutcome::Hang),
            (3, specs[3], InjOutcome::TimedOut(TimeoutKind::Fuel)),
        ]);
        let ab = a.clone().merge(b.clone()).unwrap();
        let ba = b.merge(a).unwrap();
        assert_eq!(ab, ba, "merge is commutative");
        let result = ab.into_result(&specs).unwrap();
        assert_eq!(result.n(), 4);
        assert_eq!(result.runs[1], (specs[1], InjOutcome::Hang));
    }

    #[test]
    fn merge_rejects_conflicts_and_tolerates_agreement() {
        let s = spec(9, 0, 5);
        let a = outcomes(&[(0, s, InjOutcome::Benign)]);
        let same = a.clone().merge(a.clone()).unwrap();
        assert_eq!(same, a, "self-merge is idempotent");
        let b = outcomes(&[(0, s, InjOutcome::Sdc)]);
        assert_eq!(a.merge(b).unwrap_err(), MergeError::Conflict { index: 0 });
    }

    #[test]
    fn into_result_checks_totality_and_spec_identity() {
        let specs = [spec(1, 0, 0), spec(2, 0, 1)];
        let missing = outcomes(&[(0, specs[0], InjOutcome::Benign)]);
        assert!(matches!(
            missing.into_result(&specs),
            Err(MergeError::Incomplete { index: 1, .. })
        ));
        let extra = outcomes(&[
            (0, specs[0], InjOutcome::Benign),
            (1, specs[1], InjOutcome::Benign),
            (2, spec(3, 0, 0), InjOutcome::Benign),
        ]);
        assert!(matches!(
            extra.into_result(&specs),
            Err(MergeError::OutOfRange { index: 2, n: 2 })
        ));
        let wrong = outcomes(&[
            (0, specs[0], InjOutcome::Benign),
            (1, spec(7, 7, 7), InjOutcome::Benign),
        ]);
        assert!(matches!(
            wrong.into_result(&specs),
            Err(MergeError::SpecMismatch { index: 1 })
        ));
    }

    #[test]
    fn into_partial_result_salvages_gaps_but_not_lies() {
        let specs = [spec(1, 0, 0), spec(2, 0, 1), spec(3, 1, 2)];
        // A gap at index 1 is salvageable...
        let partial = outcomes(&[
            (0, specs[0], InjOutcome::Benign),
            (2, specs[2], InjOutcome::Sdc),
        ]);
        let (result, missing) = partial.into_partial_result(&specs).unwrap();
        assert_eq!(result.n(), 2);
        assert_eq!(missing, 1);
        assert_eq!(result.runs[1], (specs[2], InjOutcome::Sdc));
        // ...but wrong content still fails exactly like `into_result`.
        let wrong = outcomes(&[(0, spec(7, 7, 7), InjOutcome::Benign)]);
        assert!(matches!(
            wrong.into_partial_result(&specs),
            Err(MergeError::SpecMismatch { index: 0 })
        ));
        let extra = outcomes(&[(5, specs[0], InjOutcome::Benign)]);
        assert!(matches!(
            extra.into_partial_result(&specs),
            Err(MergeError::OutOfRange { index: 5, n: 3 })
        ));
    }

    #[test]
    fn aggregate_merge_laws_hold_on_synthetic_cells() {
        let mk = |n, classes: [u64; 7], kinds: [u64; 4], tp, fn_| CampaignAggregate {
            n,
            classes,
            crash_kinds: kinds,
            confusion: RecallReport {
                true_positives: tp,
                false_negatives: fn_,
            },
            strata: BTreeMap::new(),
        };
        let a = mk(10, [4, 2, 3, 1, 0, 0, 0], [2, 1, 0, 0], 2, 1);
        let b = mk(5, [1, 1, 2, 0, 1, 0, 0], [1, 0, 1, 0], 1, 1);
        let c = mk(3, [3, 0, 0, 0, 0, 0, 0], [0, 0, 0, 0], 0, 0);
        let e = CampaignAggregate::empty();
        assert_eq!(a.merge(&e), a, "right identity");
        assert_eq!(e.merge(&a), a, "left identity");
        assert_eq!(a.merge(&b), b.merge(&a), "commutative");
        assert_eq!(a.merge(&b).merge(&c), a.merge(&c.merge(&b)), "associative");
        a.check().unwrap();
        a.merge(&b).check().unwrap();
    }

    #[test]
    fn aggregate_check_catches_broken_cells() {
        let mut bad = CampaignAggregate::empty();
        bad.n = 3;
        assert!(bad.check().is_err(), "classes must partition n");
        bad.classes[0] = 3;
        bad.check().unwrap();
        bad.crash_kinds[0] = 1;
        assert!(bad.check().is_err(), "kinds must sum to the crash class");
    }
}
