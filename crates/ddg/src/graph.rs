//! The dynamic dependency graph (DDG).
//!
//! Following §III-A of the paper: vertices are dynamic register instances,
//! memory-cell versions, and external sources; edges record the producing
//! instruction and link source operands to destination operands. Memory
//! addressing is captured with *virtual* ([`EdgeKind::Addr`]) edges that link
//! a load/store to the register holding the address — kept distinct from
//! direct data dependencies exactly as the paper prescribes, so the crash
//! model can find address computations.

use epvf_interp::DynValueId;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`Ddg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a DDG vertex stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A dynamic register instance (one definition event of a virtual
    /// register).
    Reg(DynValueId),
    /// One version of a memory location, created by a store. `addr` is the
    /// base address of the store that produced it.
    Mem {
        /// Base address written.
        addr: u64,
    },
    /// A value that enters the program from outside the trace (entry
    /// arguments, constant-bound parameters).
    External,
}

impl NodeKind {
    /// Whether the node is a register instance — the resource whose bits the
    /// PVF/ePVF of "used registers" accounts.
    pub fn is_reg(self) -> bool {
        matches!(self, NodeKind::Reg(_))
    }
}

/// How a dependency edge relates producer and consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Direct dataflow (operand value feeds the result).
    Data,
    /// Virtual addressing edge: the source register holds the memory
    /// address used by the consuming load/store.
    Addr,
}

/// One DDG vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// What this vertex stands for.
    pub kind: NodeKind,
    /// Bit width of the value (0 for [`NodeKind::External`] until a use
    /// reveals it).
    pub bits: u32,
    /// Dynamic trace index of the defining record, if any.
    pub def_record: Option<u64>,
    /// Producer edges: the nodes this one was computed from.
    pub deps: Vec<(NodeId, EdgeKind)>,
}

/// The dynamic dependency graph of one traced run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ddg {
    pub(crate) nodes: Vec<Node>,
    /// Output roots: nodes feeding `output` instructions, in trace order
    /// (the temporal ordering §IV-E's sampling relies on).
    pub(crate) outputs: Vec<NodeId>,
    /// Control roots: nodes feeding conditional branches. Architecturally
    /// correct execution requires correct control flow, so these are ACE
    /// roots too (the paper's §V notes all control structures are marked
    /// sensitive).
    pub(crate) controls: Vec<NodeId>,
    /// For each trace record, the node it defined (register or memory).
    pub(crate) record_def: Vec<Option<NodeId>>,
}

impl Ddg {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Output root nodes in trace order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Control (branch-condition) root nodes in trace order.
    pub fn controls(&self) -> &[NodeId] {
        &self.controls
    }

    /// The node defined by trace record `idx`, if that record defined one.
    pub fn def_of_record(&self, idx: u64) -> Option<NodeId> {
        self.record_def.get(idx as usize).copied().flatten()
    }

    /// Sum of bit-widths over all register nodes — the `Total Bits` of the
    /// used-registers resource (denominator of the paper's worked PVF
    /// example).
    pub fn total_register_bits(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_reg())
            .map(|n| u64::from(n.bits))
            .sum()
    }

    /// Backward slice: every node reachable from `from` through dependency
    /// edges (the producer closure). Includes `from` itself.
    pub fn backward_slice(&self, from: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        let mut out = Vec::new();
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            out.push(n);
            for &(d, _) in &self.nodes[n.index()].deps {
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    stack.push(d);
                }
            }
        }
        out
    }

    /// Deterministic backward closure of a root set: every node reachable
    /// from any root through dependency edges, in **preorder DFS discovery
    /// order** (roots in the given order, each node's deps in their stored
    /// order). Two isomorphic graphs walked from corresponding roots yield
    /// corresponding sequences, which is what lets the compositional engine
    /// encode a closure position-independently (by discovery index rather
    /// than by absolute [`NodeId`]).
    pub fn backward_closure_ordered(&self, roots: impl IntoIterator<Item = NodeId>) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        // Preorder: visit a node at push time, then descend into its deps
        // front-to-back (a stack of per-node dep cursors keeps it iterative).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for root in roots {
            if seen[root.index()] {
                continue;
            }
            seen[root.index()] = true;
            out.push(root);
            stack.push((root, 0));
            while let Some(&mut (n, ref mut next)) = stack.last_mut() {
                let deps = &self.nodes[n.index()].deps;
                if *next < deps.len() {
                    let (d, _) = deps[*next];
                    *next += 1;
                    if !seen[d.index()] {
                        seen[d.index()] = true;
                        out.push(d);
                        stack.push((d, 0));
                    }
                } else {
                    stack.pop();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(kind: NodeKind, bits: u32, deps: Vec<(NodeId, EdgeKind)>) -> Node {
        Node {
            kind,
            bits,
            def_record: None,
            deps,
        }
    }

    #[test]
    fn backward_slice_closure() {
        // 0 <- 1 <- 2,  3 isolated
        let ddg = Ddg {
            nodes: vec![
                n(NodeKind::External, 0, vec![]),
                n(
                    NodeKind::Reg(DynValueId(0)),
                    32,
                    vec![(NodeId(0), EdgeKind::Data)],
                ),
                n(
                    NodeKind::Reg(DynValueId(1)),
                    32,
                    vec![(NodeId(1), EdgeKind::Data)],
                ),
                n(NodeKind::Reg(DynValueId(2)), 64, vec![]),
            ],
            outputs: vec![NodeId(2)],
            controls: vec![],
            record_def: vec![],
        };
        let mut slice = ddg.backward_slice(NodeId(2));
        slice.sort();
        assert_eq!(slice, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(ddg.backward_slice(NodeId(3)), vec![NodeId(3)]);
    }

    #[test]
    fn backward_closure_ordered_is_preorder_and_deduplicated() {
        // 3 -> 1 -> 0, 3 -> 2 -> 0 (diamond); 4 isolated.
        let ddg = Ddg {
            nodes: vec![
                n(NodeKind::External, 0, vec![]),
                n(
                    NodeKind::Reg(DynValueId(0)),
                    32,
                    vec![(NodeId(0), EdgeKind::Data)],
                ),
                n(
                    NodeKind::Reg(DynValueId(1)),
                    32,
                    vec![(NodeId(0), EdgeKind::Data)],
                ),
                n(
                    NodeKind::Reg(DynValueId(2)),
                    64,
                    vec![(NodeId(1), EdgeKind::Data), (NodeId(2), EdgeKind::Data)],
                ),
                n(NodeKind::Reg(DynValueId(3)), 8, vec![]),
            ],
            outputs: vec![],
            controls: vec![],
            record_def: vec![],
        };
        // Preorder from 3: 3, first dep chain (1, 0), then 2 (0 already seen).
        assert_eq!(
            ddg.backward_closure_ordered([NodeId(3)]),
            vec![NodeId(3), NodeId(1), NodeId(0), NodeId(2)]
        );
        // Multiple roots: later roots only add unseen nodes.
        assert_eq!(
            ddg.backward_closure_ordered([NodeId(1), NodeId(3), NodeId(1)]),
            vec![NodeId(1), NodeId(0), NodeId(3), NodeId(2)]
        );
        assert_eq!(ddg.backward_closure_ordered([NodeId(4)]), vec![NodeId(4)]);
    }

    #[test]
    fn total_register_bits_ignores_external_and_mem() {
        let ddg = Ddg {
            nodes: vec![
                n(NodeKind::External, 0, vec![]),
                n(NodeKind::Mem { addr: 0x10 }, 32, vec![]),
                n(NodeKind::Reg(DynValueId(0)), 32, vec![]),
                n(NodeKind::Reg(DynValueId(1)), 64, vec![]),
            ],
            outputs: vec![],
            controls: vec![],
            record_def: vec![],
        };
        assert_eq!(ddg.total_register_bits(), 96);
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Reg(DynValueId(3)).is_reg());
        assert!(!NodeKind::Mem { addr: 0 }.is_reg());
        assert!(!NodeKind::External.is_reg());
    }
}
