//! ACE analysis: reverse breadth-first search over the DDG from the output
//! (and control) roots, yielding the *ACE graph* — the set of vertices whose
//! corruption can affect the program's architecturally visible result
//! (§III-A, Fig. 3c of the paper).

use crate::graph::{Ddg, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Options for the ACE reverse-BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AceConfig {
    /// Also root the search at conditional-branch conditions.
    ///
    /// Architecturally correct execution requires correct control flow, and
    /// the paper's §V observes that ePVF marks all control-flow structures
    /// as sensitive; disabling this reproduces the pure data-slice ablation.
    pub include_control: bool,
}

impl Default for AceConfig {
    fn default() -> Self {
        AceConfig {
            include_control: true,
        }
    }
}

/// The ACE graph: a subgraph of the DDG (identified by membership bits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AceGraph {
    in_ace: Vec<bool>,
    nodes: Vec<NodeId>,
    register_bits: u64,
}

impl AceGraph {
    /// Run the reverse BFS from all of the DDG's output roots (and control
    /// roots per `config`).
    pub fn compute(ddg: &Ddg, config: AceConfig) -> Self {
        let mut roots: Vec<NodeId> = ddg.outputs().to_vec();
        if config.include_control {
            roots.extend_from_slice(ddg.controls());
        }
        Self::from_roots(ddg, &roots)
    }

    /// Run the reverse BFS from an explicit root subset — the primitive
    /// behind the §IV-E ACE-graph sampling (first *p%* of output nodes).
    pub fn from_roots(ddg: &Ddg, roots: &[NodeId]) -> Self {
        let _span = epvf_telemetry::span(epvf_telemetry::Tmr::AceCompute);
        let mut in_ace = vec![false; ddg.len()];
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &r in roots {
            if !in_ace[r.index()] {
                in_ace[r.index()] = true;
                queue.push_back(r);
            }
        }
        let mut nodes = Vec::new();
        let mut frontier_peak = queue.len();
        while let Some(n) = queue.pop_front() {
            nodes.push(n);
            for &(d, _) in &ddg.node(n).deps {
                if !in_ace[d.index()] {
                    in_ace[d.index()] = true;
                    queue.push_back(d);
                }
            }
            frontier_peak = frontier_peak.max(queue.len());
        }
        epvf_telemetry::add(epvf_telemetry::Ctr::AceNodesVisited, nodes.len() as u64);
        epvf_telemetry::peak(epvf_telemetry::Ctr::AceFrontierPeak, frontier_peak as u64);
        nodes.sort_unstable();
        let register_bits = nodes
            .iter()
            .filter(|n| ddg.node(**n).kind.is_reg())
            .map(|n| u64::from(ddg.node(*n).bits))
            .sum();
        AceGraph {
            in_ace,
            nodes,
            register_bits,
        }
    }

    /// Whether `id` is an ACE vertex.
    pub fn contains(&self, id: NodeId) -> bool {
        self.in_ace.get(id.index()).copied().unwrap_or(false)
    }

    /// ACE vertices in ascending id order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of ACE vertices (the "ACE nodes" column of the paper's
    /// Table V).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no vertex is ACE.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sum of bit-widths of ACE *register* vertices — the `ACE Bits` of the
    /// paper's worked example.
    pub fn register_bits(&self) -> u64 {
        self.register_bits
    }

    /// The PVF of the used-registers resource: ACE register bits over total
    /// register bits (paper Eq. 1, as instantiated in the §III-A example).
    pub fn pvf(&self, ddg: &Ddg) -> f64 {
        let total = ddg.total_register_bits();
        if total == 0 {
            return 0.0;
        }
        self.register_bits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_ddg;
    use epvf_interp::{ExecConfig, Interpreter};
    use epvf_ir::{Module, ModuleBuilder, Type, Value};

    /// Program with one output-reaching chain and one dead chain.
    fn two_chain_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        let live1 = f.add(Type::I32, Value::i32(1), Value::i32(2));
        let live2 = f.mul(Type::I32, live1, Value::i32(3));
        let dead1 = f.add(Type::I64, Value::i64(5), Value::i64(6));
        let _dead2 = f.mul(Type::I64, dead1, Value::i64(7));
        f.output(Type::I32, live2);
        f.ret(None);
        f.finish();
        mb.finish().expect("verifies")
    }

    fn trace_of(m: &Module) -> epvf_interp::Trace {
        Interpreter::new(m, ExecConfig::default())
            .golden_run("main", &[])
            .expect("runs")
            .trace
            .expect("trace")
    }

    #[test]
    fn dead_chain_excluded() {
        let m = two_chain_module();
        let ddg = build_ddg(&m, &trace_of(&m));
        let ace = AceGraph::compute(&ddg, AceConfig::default());
        // live1 + live2 = 64 ACE register bits; dead chain (128 bits) excluded.
        assert_eq!(ace.register_bits(), 64);
        assert_eq!(ace.len(), 2);
        // PVF = 64 / (64 + 128)
        let pvf = ace.pvf(&ddg);
        assert!((pvf - 64.0 / 192.0).abs() < 1e-12, "pvf = {pvf}");
    }

    #[test]
    fn control_roots_extend_ace() {
        // A loop whose condition chain feeds no output: with control roots
        // the counter is ACE, without it is not.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        let entry = f.current_block();
        let header = f.create_block("h");
        let body = f.create_block("b");
        let exit = f.create_block("e");
        f.br(header);
        f.switch_to(header);
        let i = f.phi(Type::I32, vec![(entry, Value::i32(0))]);
        let c = f.icmp(epvf_ir::IcmpPred::Slt, Type::I32, i, Value::i32(3));
        f.cond_br(c, body, exit);
        f.switch_to(body);
        let i2 = f.add(Type::I32, i, Value::i32(1));
        f.add_incoming(i, body, i2);
        f.br(header);
        f.switch_to(exit);
        f.output(Type::I32, Value::i32(7)); // constant output; no data slice
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let ddg = build_ddg(&m, &trace_of(&m));

        let with = AceGraph::compute(
            &ddg,
            AceConfig {
                include_control: true,
            },
        );
        let without = AceGraph::compute(
            &ddg,
            AceConfig {
                include_control: false,
            },
        );
        assert!(with.register_bits() > 0);
        assert_eq!(without.register_bits(), 0);
        assert!(with.len() > without.len());
    }

    #[test]
    fn sampling_roots_subset_is_monotone() {
        let m = two_chain_module();
        let ddg = build_ddg(&m, &trace_of(&m));
        let all = AceGraph::compute(
            &ddg,
            AceConfig {
                include_control: false,
            },
        );
        let none = AceGraph::from_roots(&ddg, &[]);
        assert!(none.is_empty());
        let partial = AceGraph::from_roots(&ddg, &ddg.outputs()[..1]);
        assert!(partial.len() <= all.len());
        for n in partial.nodes() {
            assert!(all.contains(*n), "sampled ACE ⊆ full ACE");
        }
    }

    #[test]
    fn membership_queries() {
        let m = two_chain_module();
        let ddg = build_ddg(&m, &trace_of(&m));
        let ace = AceGraph::compute(&ddg, AceConfig::default());
        for n in ace.nodes() {
            assert!(ace.contains(*n));
        }
        assert!(!ace.contains(crate::graph::NodeId(9999)));
    }
}
