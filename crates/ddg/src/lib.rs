//! # epvf-ddg — dynamic dependency graph and ACE analysis
//!
//! Implements §III-A of the ePVF paper: from a dynamic instruction trace,
//! build the dynamic dependency graph (DDG) whose vertices are dynamic
//! register instances, memory-cell versions, and external inputs, with
//! *virtual* addressing edges linking loads/stores to the registers holding
//! their addresses; then compute the **ACE graph** by reverse breadth-first
//! search from the program's output nodes.
//!
//! The ACE graph's register bit count over the DDG's total register bits is
//! the PVF of the used-registers resource (paper Eq. 1 as instantiated in
//! the worked pathfinder example); the crash/propagation model of
//! `epvf-core` subtracts crash bits from it to obtain ePVF.
//!
//! ```
//! use epvf_ddg::{build_ddg, AceConfig, AceGraph};
//! use epvf_interp::{ExecConfig, Interpreter};
//! use epvf_ir::{ModuleBuilder, Type, Value};
//!
//! let mut mb = ModuleBuilder::new("m");
//! let mut f = mb.function("main", vec![], None);
//! let x = f.add(Type::I32, Value::i32(2), Value::i32(3));
//! let dead = f.add(Type::I64, Value::i64(1), Value::i64(1));
//! let _ = f.mul(Type::I64, dead, dead);
//! f.output(Type::I32, x);
//! f.ret(None);
//! f.finish();
//! let module = mb.finish()?;
//!
//! let run = Interpreter::new(&module, ExecConfig::default()).golden_run("main", &[])?;
//! let ddg = build_ddg(&module, run.trace.as_ref().expect("traced"));
//! let ace = AceGraph::compute(&ddg, AceConfig::default());
//! assert_eq!(ace.register_bits(), 32);         // only `x` reaches the output
//! assert!(ace.pvf(&ddg) < 1.0);                // the dead chain dilutes PVF
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod ace;
mod build;
mod graph;

pub use ace::{AceConfig, AceGraph};
pub use build::{build_ddg, build_ddg_with, DdgConfig};
pub use graph::{Ddg, EdgeKind, Node, NodeId, NodeKind};
