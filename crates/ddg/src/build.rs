//! DDG construction from a dynamic trace (§III-A).

use crate::graph::{Ddg, EdgeKind, Node, NodeId, NodeKind};
use epvf_interp::{DynInst, DynValueId, Trace};
use epvf_ir::{Inst, Module, Op, Type, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// DDG construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdgConfig {
    /// Create the paper's *virtual* addressing edges linking loads/stores
    /// to the registers holding their addresses (§III-A). Disabling them is
    /// the ablation showing why address/register aliasing handling matters:
    /// without these edges address registers never become ACE and the crash
    /// model has nothing to propagate from.
    pub addr_edges: bool,
}

impl Default for DdgConfig {
    fn default() -> Self {
        DdgConfig { addr_edges: true }
    }
}

/// Per-static-instruction index used to interpret trace records without
/// repeated module scans.
#[derive(Debug)]
pub(crate) struct InstIndex<'m> {
    by_sid: Vec<Option<&'m Inst>>,
}

impl<'m> InstIndex<'m> {
    pub(crate) fn new(module: &'m Module) -> Self {
        let mut by_sid: Vec<Option<&'m Inst>> = vec![None; module.n_static_insts as usize];
        for f in &module.functions {
            for inst in f.insts() {
                if inst.sid.index() >= by_sid.len() {
                    by_sid.resize(inst.sid.index() + 1, None);
                }
                by_sid[inst.sid.index()] = Some(inst);
            }
        }
        InstIndex { by_sid }
    }

    pub(crate) fn get(&self, sid: epvf_ir::StaticInstId) -> &'m Inst {
        self.by_sid
            .get(sid.index())
            .copied()
            .flatten()
            .expect("trace references instruction missing from module")
    }
}

/// Type (and hence width) of a traced operand.
fn operand_type(module: &Module, rec: &DynInst, v: Value) -> Type {
    match v {
        Value::Reg(r) => module.functions[rec.func.index()].value_types[r.index()],
        Value::ConstInt { ty, .. } | Value::ConstFloat { ty, .. } => ty,
        Value::Global(_) => Type::Ptr,
    }
}

struct Builder<'m> {
    module: &'m Module,
    config: DdgConfig,
    nodes: Vec<Node>,
    by_dyn: HashMap<DynValueId, NodeId>,
    /// byte address → memory node that last wrote it
    last_store: HashMap<u64, NodeId>,
    outputs: Vec<NodeId>,
    controls: Vec<NodeId>,
    record_def: Vec<Option<NodeId>>,
}

impl<'m> Builder<'m> {
    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Node for a dynamic register value; creates a def-less register node
    /// (entry argument / constant-bound parameter) on first sight.
    fn reg_node(&mut self, dv: DynValueId, bits: u32) -> NodeId {
        if let Some(&id) = self.by_dyn.get(&dv) {
            return id;
        }
        let id = self.push_node(Node {
            kind: NodeKind::Reg(dv),
            bits,
            def_record: None,
            deps: Vec::new(),
        });
        self.by_dyn.insert(dv, id);
        id
    }

    /// Dependency edges for the register-backed operands of a record.
    fn operand_deps(&mut self, rec: &DynInst) -> Vec<(NodeId, EdgeKind)> {
        let mut deps = Vec::new();
        for op in &rec.operands {
            if let Some(src) = op.src {
                let bits = operand_type(self.module, rec, op.value).bits();
                deps.push((self.reg_node(src, bits), EdgeKind::Data));
            }
        }
        deps
    }

    fn define_result(&mut self, rec: &DynInst, deps: Vec<(NodeId, EdgeKind)>) -> Option<NodeId> {
        let (reg, _bits, dv) = rec.result?;
        let ty = self.module.functions[rec.func.index()].value_types[reg.index()];
        let id = self.push_node(Node {
            kind: NodeKind::Reg(dv),
            bits: ty.bits(),
            def_record: Some(rec.idx),
            deps,
        });
        self.by_dyn.insert(dv, id);
        Some(id)
    }

    fn visit(&mut self, rec: &DynInst, inst: &Inst) {
        let def = match &inst.op {
            Op::Store { .. } => {
                // operands: [value, addr]
                let mut deps = Vec::new();
                if let Some(src) = rec.operands[0].src {
                    let bits = operand_type(self.module, rec, rec.operands[0].value).bits();
                    deps.push((self.reg_node(src, bits), EdgeKind::Data));
                }
                if self.config.addr_edges {
                    if let Some(src) = rec.operands[1].src {
                        // The virtual addressing edge of §III-A.
                        deps.push((self.reg_node(src, 64), EdgeKind::Addr));
                    }
                }
                let mem = rec.mem.as_ref().expect("store records carry access info");
                let id = self.push_node(Node {
                    kind: NodeKind::Mem { addr: mem.addr },
                    bits: (mem.size * 8) as u32,
                    def_record: Some(rec.idx),
                    deps,
                });
                for b in mem.addr..mem.addr + mem.size {
                    self.last_store.insert(b, id);
                }
                Some(id)
            }
            Op::Load { .. } => {
                // operands: [addr]
                let mem = rec.mem.as_ref().expect("load records carry access info");
                let mut deps: Vec<(NodeId, EdgeKind)> = Vec::new();
                let mut last: Option<NodeId> = None;
                for b in mem.addr..mem.addr + mem.size {
                    if let Some(&src) = self.last_store.get(&b) {
                        if last != Some(src) {
                            deps.push((src, EdgeKind::Data));
                            last = Some(src);
                        }
                    }
                }
                if self.config.addr_edges {
                    if let Some(src) = rec.operands[0].src {
                        deps.push((self.reg_node(src, 64), EdgeKind::Addr));
                    }
                }
                self.define_result(rec, deps)
            }
            Op::Output { .. } => {
                if let Some(src) = rec.operands[0].src {
                    let bits = operand_type(self.module, rec, rec.operands[0].value).bits();
                    let n = self.reg_node(src, bits);
                    self.outputs.push(n);
                }
                None
            }
            Op::CondBr { .. } => {
                if let Some(src) = rec.operands[0].src {
                    let n = self.reg_node(src, 1);
                    self.controls.push(n);
                }
                None
            }
            // Calls and returns are transparent in the trace (parameter and
            // return value passing reuses dynamic ids), so they define no
            // node of their own.
            Op::Call { .. }
            | Op::Ret { .. }
            | Op::Br { .. }
            | Op::Free { .. }
            | Op::Detect
            | Op::DetectIf { .. } => None,
            // Every other operation defines a register from its
            // register-backed operands.
            _ => {
                let deps = self.operand_deps(rec);
                self.define_result(rec, deps)
            }
        };
        self.record_def[rec.idx as usize] = def;
    }
}

/// Build the DDG of a traced run.
///
/// # Panics
/// Panics if the trace does not belong to `module` (unknown static ids), or
/// records are missing access metadata.
pub fn build_ddg(module: &Module, trace: &Trace) -> Ddg {
    build_ddg_with(module, trace, DdgConfig::default())
}

/// [`build_ddg`] with explicit options.
///
/// # Panics
/// Panics under the same conditions as [`build_ddg`].
pub fn build_ddg_with(module: &Module, trace: &Trace, config: DdgConfig) -> Ddg {
    let _span = epvf_telemetry::span(epvf_telemetry::Tmr::DdgBuild);
    let index = InstIndex::new(module);
    let mut b = Builder {
        module,
        config,
        nodes: Vec::with_capacity(trace.len()),
        by_dyn: HashMap::with_capacity(trace.len()),
        last_store: HashMap::new(),
        outputs: Vec::new(),
        controls: Vec::new(),
        record_def: vec![None; trace.len()],
    };
    for rec in trace {
        let inst = index.get(rec.sid);
        b.visit(rec, inst);
    }
    {
        use epvf_telemetry::{add, Ctr};
        add(Ctr::DdgBuilds, 1);
        add(Ctr::DdgNodesCreated, b.nodes.len() as u64);
        add(
            Ctr::DdgEdgesCreated,
            b.nodes.iter().map(|n| n.deps.len() as u64).sum(),
        );
    }
    Ddg {
        nodes: b.nodes,
        outputs: b.outputs,
        controls: b.controls,
        record_def: b.record_def,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_interp::{ExecConfig, Interpreter};
    use epvf_ir::{ModuleBuilder, Type, Value};

    /// Mirror of the paper's Fig. 3 running example: a store whose address
    /// is a gep, plus a dead register (r8) that must not become ACE.
    fn pathfinder_fragment() -> (Module, Trace) {
        let mut mb = ModuleBuilder::new("frag");
        let mut f = mb.function("main", vec![], None);
        let buf = f.malloc(Value::i64(64)); // r6-ish base
        let idx = f.add(Type::I64, Value::i64(0), Value::i64(1)); // r7
        let v = f.add(Type::I32, Value::i32(20), Value::i32(22)); // r4
        let dead = f.add(Type::I32, Value::i32(1), Value::i32(2)); // r8 analogue
        let _ = f.mul(Type::I32, dead, dead); // keep r8 used but not output-reaching
        let slot = f.gep(buf, idx, 4); // r5 = r6 + 4*r7
        f.store(Type::I32, v, slot);
        let back = f.load(Type::I32, slot);
        f.output(Type::I32, back);
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let r = Interpreter::new(&m, ExecConfig::default())
            .golden_run("main", &[])
            .expect("runs");
        assert_eq!(r.outputs, vec![42]);
        let t = r.trace.expect("trace");
        (m, t)
    }

    #[test]
    fn ddg_has_store_with_data_and_addr_edges() {
        let (m, t) = pathfinder_fragment();
        let ddg = build_ddg(&m, &t);
        let mem_nodes: Vec<_> = ddg
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Mem { .. }))
            .collect();
        assert_eq!(mem_nodes.len(), 1, "exactly one store");
        let store = mem_nodes[0];
        let kinds: Vec<EdgeKind> = store.deps.iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&EdgeKind::Data), "stored value edge");
        assert!(kinds.contains(&EdgeKind::Addr), "virtual addressing edge");
    }

    #[test]
    fn load_links_to_prior_store() {
        let (m, t) = pathfinder_fragment();
        let ddg = build_ddg(&m, &t);
        // find the load's node: a Reg node whose deps include a Mem node
        let has_load_link = ddg.nodes().iter().any(|n| {
            n.kind.is_reg()
                && n.deps.iter().any(|(d, k)| {
                    *k == EdgeKind::Data && matches!(ddg.node(*d).kind, NodeKind::Mem { .. })
                })
        });
        assert!(
            has_load_link,
            "load must depend on the store's memory version"
        );
    }

    #[test]
    fn output_roots_recorded() {
        let (m, t) = pathfinder_fragment();
        let ddg = build_ddg(&m, &t);
        assert_eq!(ddg.outputs().len(), 1);
        let out = ddg.node(ddg.outputs()[0]);
        assert!(out.kind.is_reg());
        assert_eq!(out.bits, 32);
    }

    #[test]
    fn record_def_maps_back() {
        let (m, t) = pathfinder_fragment();
        let ddg = build_ddg(&m, &t);
        let mut defined = 0;
        for rec in &t {
            if let Some(id) = ddg.def_of_record(rec.idx) {
                defined += 1;
                assert_eq!(ddg.node(id).def_record, Some(rec.idx));
            }
        }
        // malloc, add, add, dead add, mul, gep, store, load define nodes
        assert_eq!(defined, 8);
    }

    #[test]
    fn entry_arguments_become_defless_reg_nodes() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![Type::I32], None);
        let x = f.param(0);
        let y = f.add(Type::I32, x, Value::i32(1));
        f.output(Type::I32, y);
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let r = Interpreter::new(&m, ExecConfig::default())
            .golden_run("main", &[5])
            .expect("runs");
        let ddg = build_ddg(&m, &r.trace.expect("trace"));
        let defless: Vec<_> = ddg
            .nodes()
            .iter()
            .filter(|n| n.kind.is_reg() && n.def_record.is_none())
            .collect();
        assert_eq!(defless.len(), 1, "the entry argument");
        assert_eq!(defless[0].bits, 32);
    }
}
