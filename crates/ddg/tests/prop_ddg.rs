//! Property tests over randomly generated array-walking programs: the DDG
//! and ACE graph must uphold their structural invariants regardless of
//! program shape.

use epvf_ddg::{build_ddg, AceConfig, AceGraph, EdgeKind, NodeKind};
use epvf_interp::{ExecConfig, Interpreter};
use epvf_ir::{BinOp, Module, ModuleBuilder, Type, Value};
use proptest::prelude::*;

/// One random straight-line action.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Combine two prior values.
    Arith(BinOp, usize, usize),
    /// Store a prior value at a prior-value-derived slot.
    Store(usize, usize),
    /// Load from a prior-value-derived slot.
    Load(usize),
    /// Mark a prior value as output.
    Output(usize),
}

fn action_strategy() -> impl Strategy<Value = Vec<Action>> {
    let op = prop::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And]);
    prop::collection::vec(
        (
            0u8..4,
            op,
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
        ),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, op, a, b))| {
                let n = i + 2;
                match kind {
                    0 => Action::Arith(op, a.index(n), b.index(n)),
                    1 => Action::Store(a.index(n), b.index(n)),
                    2 => Action::Load(a.index(n)),
                    _ => Action::Output(a.index(n)),
                }
            })
            .collect()
    })
}

/// Build a runnable module from the action list. Values are i64; slots are
/// derived by masking an index into a 64-cell array.
fn build(actions: &[Action]) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let mut f = mb.function("main", vec![Type::I64, Type::I64], None);
    let buf = f.malloc(Value::i64(8 * 64));
    let mut vals = vec![f.param(0), f.param(1)];
    let mut emitted_output = false;
    for a in actions {
        match a {
            Action::Arith(op, x, y) => {
                let v = f.bin(*op, Type::I64, vals[*x], vals[*y]);
                vals.push(v);
            }
            Action::Store(v, i) => {
                let masked = f.and(Type::I64, vals[*i], Value::i64(63));
                let slot = f.gep(buf, masked, 8);
                f.store(Type::I64, vals[*v], slot);
                vals.push(masked);
            }
            Action::Load(i) => {
                let masked = f.and(Type::I64, vals[*i], Value::i64(63));
                let slot = f.gep(buf, masked, 8);
                let v = f.load(Type::I64, slot);
                vals.push(v);
            }
            Action::Output(i) => {
                f.output(Type::I64, vals[*i]);
                emitted_output = true;
                vals.push(vals[*i]);
            }
        }
    }
    if !emitted_output {
        let last = *vals.last().expect("nonempty");
        f.output(Type::I64, last);
    }
    f.ret(None);
    f.finish();
    mb.finish().expect("verifies")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ddg_invariants_hold_for_random_programs(
        actions in action_strategy(),
        seeds in (any::<u64>(), any::<u64>()),
    ) {
        let m = build(&actions);
        let run = Interpreter::new(&m, ExecConfig::default())
            .golden_run("main", &[seeds.0, seeds.1])
            .expect("runs");
        let trace = run.trace.as_ref().expect("traced");
        let ddg = build_ddg(&m, trace);

        // 1. Every dependency edge points at an existing earlier node.
        for (i, node) in ddg.nodes().iter().enumerate() {
            for &(dep, _) in &node.deps {
                prop_assert!(dep.index() < ddg.len());
                prop_assert!(dep.index() != i, "no self-loops");
            }
        }

        // 2. def_record round-trips.
        for rec in trace {
            if let Some(id) = ddg.def_of_record(rec.idx) {
                prop_assert_eq!(ddg.node(id).def_record, Some(rec.idx));
            }
        }

        // 3. ACE ⊆ DDG and ACE register bits ≤ total register bits.
        let ace = AceGraph::compute(&ddg, AceConfig::default());
        prop_assert!(ace.len() <= ddg.len());
        prop_assert!(ace.register_bits() <= ddg.total_register_bits());
        for n in ace.nodes() {
            prop_assert!(ace.contains(*n));
        }

        // 4. The ACE set is dependency-closed: deps of ACE nodes are ACE.
        for n in ace.nodes() {
            for &(dep, _) in &ddg.node(*n).deps {
                prop_assert!(ace.contains(dep), "ACE closure violated");
            }
        }

        // 5. Every output root is ACE, and backward slices are subsets of
        //    the ACE graph when rooted at ACE nodes.
        for out in ddg.outputs() {
            prop_assert!(ace.contains(*out));
            for n in ddg.backward_slice(*out) {
                prop_assert!(ace.contains(n));
            }
        }

        // 6. Loads depend on the memory version of the covering store via a
        //    Data edge, never an Addr edge to a Mem node.
        for node in ddg.nodes() {
            for &(dep, kind) in &node.deps {
                if matches!(ddg.node(dep).kind, NodeKind::Mem { .. }) {
                    prop_assert_eq!(kind, EdgeKind::Data, "mem deps are data edges");
                }
            }
        }
    }

    /// A store followed by a load of the same slot links them in the DDG.
    #[test]
    fn store_load_forwarding_is_visible(v in any::<i64>(), slot in 0i64..64) {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        let buf = f.malloc(Value::i64(8 * 64));
        let s = f.gep(buf, Value::i64(slot), 8);
        f.store(Type::I64, Value::i64(v), s);
        let l = f.load(Type::I64, s);
        f.output(Type::I64, l);
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let run = Interpreter::new(&m, ExecConfig::default())
            .golden_run("main", &[])
            .expect("runs");
        prop_assert_eq!(run.outputs[0], v as u64);
        let ddg = build_ddg(&m, run.trace.as_ref().expect("traced"));
        let load_node = ddg
            .nodes()
            .iter()
            .find(|n| {
                n.kind.is_reg()
                    && n.deps.iter().any(|(d, _)| matches!(ddg.node(*d).kind, NodeKind::Mem { .. }))
            });
        prop_assert!(load_node.is_some(), "load links to the store's memory version");
    }
}
