//! End-to-end oracle validation of every shipped fault model.
//!
//! Two layers:
//!
//! 1. **Exhaustive sweeps** — each non-default model's full injection-point
//!    universe on the two smallest bundled workloads runs to a concrete
//!    outcome through the differential oracle, and no hard invariant
//!    (`definitely_faults`, in-bounds flipped stores, …) may be violated.
//!    Recall/precision floors are *not* asserted here: the crash model only
//!    claims to predict register/address corruption, and the per-model
//!    confusion matrices are recorded in EXPERIMENTS.md instead.
//!
//! 2. **Planted faults** — hand-built modules where the outcome of one
//!    specific injection is known by construction: a wrong-branch SDC, a
//!    skipped output SDC, a high-bit store-address crash, and the SEC-DED
//!    delayed-reporting pair (short window ⇒ expired+masked, long window ⇒
//!    detected on consumption).

use epvf_core::{parse_fault_model, EpvfConfig};
use epvf_interp::InjectionSpec;
use epvf_ir::{IcmpPred, Module, ModuleBuilder, Op, StaticInstId, Type, Value};
use epvf_llfi::{Campaign, CampaignConfig, InjOutcome};
use epvf_oracle::check_module_model;
use epvf_workloads::{smallest_first, Scale};

/// Sweep one model exhaustively over the two smallest workloads and demand
/// zero hard-invariant violations.
fn sweep_model(model_str: &str) {
    let workloads = smallest_first(Scale::Tiny);
    assert!(workloads.len() >= 2, "need two workloads to sweep");
    for w in &workloads[..2] {
        let model = parse_fault_model(model_str).expect("model parses");
        let oracle =
            check_module_model(&w.module, "main", &w.args, 8, EpvfConfig::default(), model);
        assert!(
            oracle.ground_truth.is_exhaustive(),
            "{} under {model_str}: sweep must be exhaustive ({} of {})",
            w.name,
            oracle.ground_truth.runs.len(),
            oracle.ground_truth.universe
        );
        assert!(
            !oracle.ground_truth.runs.is_empty(),
            "{} under {model_str}: model enumerates no sites",
            w.name
        );
        assert!(
            oracle.hard_violations.is_empty(),
            "{} under {model_str}: hard invariant violated: {:?}",
            w.name,
            oracle.hard_violations
        );
        let c = oracle.report.confusion;
        let [crash, sdc, benign, hang, detected, _, _] = oracle.ground_truth.tally();
        println!(
            "{} {model_str}: {} flips crash={crash} sdc={sdc} benign={benign} hang={hang} \
             detected={detected} | recall {:.4} precision {:.4}",
            w.name,
            oracle.ground_truth.universe,
            c.recall(),
            c.precision()
        );
    }
}

#[test]
fn burst_model_sweeps_clean() {
    sweep_model("burst:2");
}

#[test]
fn skip_model_sweeps_clean() {
    sweep_model("skip");
}

#[test]
fn wrong_branch_model_sweeps_clean() {
    sweep_model("wrong-branch");
}

#[test]
fn store_addr_model_sweeps_clean() {
    sweep_model("store-addr");
}

#[test]
fn ecc_model_sweeps_clean() {
    sweep_model("ecc:100");
}

// ---------------------------------------------------------------------------
// Planted faults with known outcomes.
// ---------------------------------------------------------------------------

/// Find the first static instruction satisfying `pred`.
fn find_sid(module: &Module, pred: impl Fn(&Op) -> bool) -> StaticInstId {
    module
        .functions
        .iter()
        .flat_map(|f| f.insts())
        .find(|i| pred(&i.op))
        .expect("module contains the planted instruction")
        .sid
}

/// Dynamic index of the first golden-trace record at `sid`.
fn first_dyn_at(campaign: &Campaign<'_>, sid: StaticInstId) -> u64 {
    campaign
        .golden()
        .trace
        .as_ref()
        .expect("golden is traced")
        .records
        .iter()
        .find(|r| r.sid == sid)
        .expect("planted instruction executes")
        .idx
}

/// `if n < 10 { output 1 } else { output 2 }` — inverting the branch on a
/// small argument swaps the printed value.
fn branch_module() -> Module {
    let mut mb = ModuleBuilder::new("b");
    let mut f = mb.function("main", vec![Type::I32], None);
    let n = f.param(0);
    let c = f.icmp(IcmpPred::Slt, Type::I32, n, Value::i32(10));
    let then_b = f.create_block("t");
    let else_b = f.create_block("e");
    f.cond_br(c, then_b, else_b);
    f.switch_to(then_b);
    f.output(Type::I32, Value::i32(1));
    f.ret(None);
    f.switch_to(else_b);
    f.output(Type::I32, Value::i32(2));
    f.ret(None);
    f.finish();
    mb.finish().expect("verifies")
}

#[test]
fn planted_wrong_branch_is_sdc() {
    let m = branch_module();
    let model = parse_fault_model("wrong-branch").expect("parses");
    let campaign =
        Campaign::with_model(&m, "main", &[5], CampaignConfig::default(), model).expect("golden");
    let sid = find_sid(&m, |op| matches!(op, Op::CondBr { .. }));
    let spec = InjectionSpec {
        dyn_idx: first_dyn_at(&campaign, sid),
        operand_slot: 0,
        bit: 0,
    };
    assert_eq!(
        campaign.run_spec(spec),
        InjOutcome::Sdc,
        "inverted branch prints 2 instead of 1"
    );
}

/// `output(n + 5)` — skipping the output drops a printed value.
fn output_module() -> Module {
    let mut mb = ModuleBuilder::new("o");
    let mut f = mb.function("main", vec![Type::I32], None);
    let n = f.param(0);
    let x = f.add(Type::I32, n, Value::i32(5));
    f.output(Type::I32, x);
    f.ret(None);
    f.finish();
    mb.finish().expect("verifies")
}

#[test]
fn planted_skip_of_output_is_sdc() {
    let m = output_module();
    let model = parse_fault_model("skip").expect("parses");
    let campaign =
        Campaign::with_model(&m, "main", &[3], CampaignConfig::default(), model).expect("golden");
    let sid = find_sid(&m, |op| matches!(op, Op::Output { .. }));
    let spec = InjectionSpec {
        dyn_idx: first_dyn_at(&campaign, sid),
        operand_slot: 0,
        bit: 0,
    };
    assert_eq!(
        campaign.run_spec(spec),
        InjOutcome::Sdc,
        "skipped output leaves the printed stream short"
    );
}

/// store + load round trip through one malloc'd cell, with a spacer chain
/// of `adds` dynamic instructions between store and load so ECC windows can
/// be planted on either side of the consumption point.
fn store_load_module(adds: u32) -> Module {
    let mut mb = ModuleBuilder::new("s");
    let mut f = mb.function("main", vec![Type::I32], None);
    let n = f.param(0);
    let buf = f.malloc(Value::i64(64));
    f.store(Type::I64, Value::i64(0x1234), buf);
    let mut acc = n;
    for _ in 0..adds {
        acc = f.add(Type::I32, acc, Value::i32(1));
    }
    f.output(Type::I32, acc);
    let v = f.load(Type::I64, buf);
    f.output(Type::I64, v);
    f.ret(None);
    f.finish();
    mb.finish().expect("verifies")
}

#[test]
fn planted_store_addr_high_bit_crashes() {
    let m = store_load_module(0);
    let model = parse_fault_model("store-addr").expect("parses");
    let campaign =
        Campaign::with_model(&m, "main", &[1], CampaignConfig::default(), model).expect("golden");
    let sid = find_sid(&m, |op| matches!(op, Op::Store { .. }));
    let spec = InjectionSpec {
        dyn_idx: first_dyn_at(&campaign, sid),
        operand_slot: 1,
        bit: 40,
    };
    let outcome = campaign.run_spec(spec);
    assert!(
        outcome.is_crash(),
        "store to address ^ 2^40 lands far outside every allocation: {outcome:?}"
    );
}

#[test]
fn planted_ecc_long_window_is_detected() {
    // 8 spacer instructions between store and load; a window of 1000 keeps
    // the uncorrectable double-bit error armed until the load consumes it.
    let m = store_load_module(8);
    let model = parse_fault_model("ecc:1000").expect("parses");
    let campaign =
        Campaign::with_model(&m, "main", &[1], CampaignConfig::default(), model).expect("golden");
    let sid = find_sid(&m, |op| matches!(op, Op::Store { .. }));
    let spec = InjectionSpec {
        dyn_idx: first_dyn_at(&campaign, sid),
        operand_slot: 0,
        bit: 0,
    };
    assert_eq!(
        campaign.run_spec(spec),
        InjOutcome::Detected,
        "SEC-DED raises on the consuming load inside the window"
    );
}

#[test]
fn planted_ecc_short_window_is_masked() {
    // Same plant, but a 2-instruction window expires during the spacer
    // chain: the scrubber restores the golden word before the load, the run
    // rejoins the golden trace, and the fault classifies benign — the
    // delayed-reporting masked class.
    let m = store_load_module(8);
    let model = parse_fault_model("ecc:2").expect("parses");
    let campaign =
        Campaign::with_model(&m, "main", &[1], CampaignConfig::default(), model).expect("golden");
    let sid = find_sid(&m, |op| matches!(op, Op::Store { .. }));
    let spec = InjectionSpec {
        dyn_idx: first_dyn_at(&campaign, sid),
        operand_slot: 0,
        bit: 0,
    };
    assert_eq!(
        campaign.run_spec(spec),
        InjOutcome::Benign,
        "an error never consumed before the window closes is masked"
    );
}

#[test]
fn planted_burst_flip_tracks_mask_width() {
    // Flipping the two top value bits of the stored constant survives to
    // the final output: an SDC under burst:2 at the store's value slot.
    let m = store_load_module(0);
    let model = parse_fault_model("burst:2").expect("parses");
    let campaign =
        Campaign::with_model(&m, "main", &[1], CampaignConfig::default(), model).expect("golden");
    let sid = find_sid(&m, |op| matches!(op, Op::Store { .. }));
    let spec = InjectionSpec {
        dyn_idx: first_dyn_at(&campaign, sid),
        operand_slot: 0,
        bit: 20,
    };
    assert_eq!(
        campaign.run_spec(spec),
        InjOutcome::Sdc,
        "corrupted stored value reaches the output"
    );
}
