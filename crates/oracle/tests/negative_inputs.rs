//! Negative-input suite for the IR ingestion path: mutated well-formed
//! modules must produce a structured `ParseError`/`VerifyError` (or, when
//! the mutation happens to stay well-formed, parse cleanly) — **never** a
//! panic. Each panic here would be a process-killing crash for an `epvf`
//! invocation fed a corrupt `.ir` file.
//!
//! The corpus is derived from the property-based `Recipe` generator:
//! every case emits a random valid module, renders it to text, applies a
//! deterministic byte- or line-level mutation, and feeds the result to
//! `parse_module`.

use epvf_ir::parse_module;
use epvf_oracle::{GenConfig, Recipe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A corpus of valid module texts drawn from the generator.
fn corpus(seed: u64, n: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Recipe::random(&mut rng, &GenConfig::default())
                .emit()
                .to_string()
        })
        .collect()
}

/// Assert the parser terminates with a `Result` (panics fail the test
/// harness on their own; this wrapper keeps intent explicit and checks
/// that an `Err` carries a non-empty message).
fn must_not_panic(text: &str) {
    if let Err(e) = parse_module(text) {
        assert!(
            !e.to_string().is_empty(),
            "parse error must carry a message"
        );
    }
}

#[test]
fn pristine_corpus_round_trips() {
    for text in corpus(0xA11CE, 16) {
        let m = parse_module(&text).expect("generator output parses");
        assert_eq!(m.to_string(), text, "round trip is stable");
    }
}

#[test]
fn truncation_at_every_line_is_structured() {
    for text in corpus(1, 8) {
        let lines: Vec<&str> = text.lines().collect();
        for cut in 0..lines.len() {
            must_not_panic(&lines[..cut].join("\n"));
        }
    }
}

#[test]
fn truncation_at_byte_offsets_is_structured() {
    for text in corpus(2, 8) {
        let mut rng = StdRng::seed_from_u64(text.len() as u64);
        for _ in 0..32 {
            // Cut at a char boundary (the texts are ASCII, but stay safe).
            let mut cut = rng.gen_range(0..text.len().max(1));
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            must_not_panic(&text[..cut]);
        }
    }
}

#[test]
fn single_byte_corruption_is_structured() {
    // Replace one byte with a printable or pathological substitute at
    // many positions; covers digit mangling, delimiter loss, sign flips.
    let substitutes = [b'(', b')', b'@', b'%', b'"', b'-', b'9', b'x', b' ', 0xC3];
    for text in corpus(3, 6) {
        let bytes = text.as_bytes();
        let mut rng = StdRng::seed_from_u64(bytes.len() as u64);
        for _ in 0..64 {
            let pos = rng.gen_range(0..bytes.len().max(1));
            let sub = substitutes[rng.gen_range(0..substitutes.len())];
            let mut mutated = bytes.to_vec();
            mutated[pos.min(bytes.len() - 1)] = sub;
            // 0xC3 makes the text invalid-or-multibyte UTF-8; the parser
            // only sees &str, so lossy-decode as a real caller would.
            let mutated = String::from_utf8_lossy(&mutated);
            must_not_panic(&mutated);
        }
    }
}

#[test]
fn line_level_mutations_are_structured() {
    for (case, text) in corpus(4, 6).into_iter().enumerate() {
        let lines: Vec<&str> = text.lines().collect();
        let mut rng = StdRng::seed_from_u64(case as u64);
        for _ in 0..24 {
            let mut mutated: Vec<&str> = lines.clone();
            let i = rng.gen_range(0..lines.len().max(1));
            match rng.gen_range(0..4u32) {
                // Delete a line (drops terminators, labels, braces).
                0 => {
                    mutated.remove(i);
                }
                // Duplicate a line (redefined registers, double braces).
                1 => mutated.insert(i, lines[i]),
                // Swap two lines (out-of-order definitions).
                2 => {
                    let j = rng.gen_range(0..lines.len());
                    mutated.swap(i, j);
                }
                // Splice in garbage.
                _ => mutated.insert(i, "  %r9999 = frob i32 %missing, ("),
            }
            must_not_panic(&mutated.join("\n"));
        }
    }
}

#[test]
fn adversarial_handwritten_inputs_are_structured() {
    // Regression corpus for specific historic panic sites plus generic
    // nastiness: inverted parens, multi-byte chars in offset-sliced
    // positions, unterminated quotes, absurd sizes.
    let cases = [
        "",
        "\n\n\n",
        "define",
        "define void {",
        "define void @m)x( {",
        "define i32 )@m( {",
        "global @g 4 4 init \"ααββ\"",
        "global @g 4 4 init \"abc\"",
        "global @g 4 4 init \"zz\"",
        "global @g 4 4 init \"ab",
        "define void @main() {\nbb0:\n  call @f0)x(\n  ret\n}",
        "define void @main() {\nbb0:\n  ret\n}\n}",
        "define void @main() {\nbb0:\n  %r0 = add i32 1,\n  ret\n}",
        "define void @main() {\nbb0:\n  br bb99999999999999999999\n  ret\n}",
        "define void @main(i32 i32 i32",
        "\u{FEFF}define void @main() {\nbb0:\n  ret\n}",
        "define void @main() {\nbb0:\n  output i32 \"unterminated\n  ret\n}",
    ];
    for text in cases {
        must_not_panic(text);
    }
}
