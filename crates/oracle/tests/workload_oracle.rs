//! Exhaustive oracle over the two smallest bundled workloads: every
//! injectable `(dynamic instruction, operand, bit)` is executed, the crash
//! model is scored against that ground truth (acceptance floor 0.85/0.85,
//! paper Table V reports 89%/92% sampled), and one disagreement repro is
//! round-tripped through the text format and replayed to confirm it
//! reproduces the recorded outcome.

use epvf_core::{analyze, EpvfConfig};
use epvf_llfi::{Campaign, CampaignConfig};
use epvf_oracle::{
    differential_check, hard_invariant_scan, parse_repro, replay_repro, sweep, write_repros,
    ReproContext,
};
use epvf_workloads::{smallest_first, Scale};
use std::path::Path;

#[test]
fn smallest_workloads_beat_the_acceptance_floor() {
    let workloads = smallest_first(Scale::Tiny);
    assert!(workloads.len() >= 2, "need two workloads to sweep");
    let mut replayed_one = false;
    for w in &workloads[..2] {
        let campaign = Campaign::new(&w.module, "main", &w.args, CampaignConfig::default())
            .expect("golden run completes");
        let trace = campaign.golden().trace.as_ref().expect("golden is traced");
        let res = analyze(&w.module, trace, EpvfConfig::default());
        let gt = sweep(&campaign, 0);
        assert!(gt.is_exhaustive(), "{}: exhaustive sweep", w.name);
        let report = differential_check(&campaign, &res, &gt, 8);
        let violations = hard_invariant_scan(&campaign, &res, &gt);
        assert!(
            violations.is_empty(),
            "{}: hard invariant violated: {violations:?}",
            w.name
        );
        let c = report.confusion;
        println!(
            "{}: {} flips, recall {:.4} precision {:.4} (tp={} fp={} fn={} tn={})",
            w.name,
            gt.universe,
            c.recall(),
            c.precision(),
            c.tp,
            c.fp,
            c.fn_,
            c.tn
        );
        assert!(
            c.recall() >= 0.85,
            "{}: recall {:.4} below acceptance floor",
            w.name,
            c.recall()
        );
        assert!(
            c.precision() >= 0.85,
            "{}: precision {:.4} below acceptance floor",
            w.name,
            c.precision()
        );

        // Every truncated disagreement becomes a replayable repro file.
        let ctx = ReproContext {
            label: w.name,
            module: &w.module,
            entry: "main",
            args: &w.args,
            trace,
        };
        let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("oracle-repros");
        let paths =
            write_repros(&dir, w.name, &ctx, &report.disagreements).expect("repros written");
        assert_eq!(paths.len(), report.disagreements.len());
        if let (Some(path), Some(d)) = (paths.first(), report.disagreements.first()) {
            let text = std::fs::read_to_string(path).expect("repro readable");
            let repro = parse_repro(&text).expect("repro parses");
            assert_eq!(repro.spec, d.spec, "spec survives the round trip");
            let outcome = replay_repro(&repro).expect("repro replays");
            assert_eq!(
                outcome, d.outcome,
                "{}: replay of {} diverged from recorded outcome",
                w.name, d.spec
            );
            replayed_one = true;
        }
    }
    assert!(
        replayed_one,
        "expected at least one disagreement repro to replay (models are not perfect)"
    );
}
