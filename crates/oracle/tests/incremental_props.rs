//! Mutation-driven incrementality property: editing one section of a
//! program and re-analyzing against a warm section cache must (a) recompute
//! *only* the mutated section — every other section replays as a hit — and
//! (b) produce exactly the result a cold-cache analysis of the mutant
//! produces. Together with the differential suite this pins down both
//! directions of the cache contract: it never reuses stale summaries and it
//! never recomputes unchanged ones.

use epvf_core::{analyze, analyze_compositional, EpvfConfig, SectionCache};
use epvf_interp::{ExecConfig, Interpreter, Trace};
use epvf_ir::{IcmpPred, Module, ModuleBuilder, Type, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One independent loop nest: its own buffer, trip count, and multiplier.
/// Loops share nothing, so editing one multiplier must leave every other
/// loop's section key untouched.
#[derive(Clone, Debug, PartialEq)]
struct LoopSpec {
    trips: u32,
    mult: u32,
}

/// Emit `main` as K sequential, data-independent loops. Each iteration of
/// loop `k` stores `i * mult_k` into its own malloc'd array, loads it back,
/// and outputs it — so every loop section carries store, load, and output
/// roots for both crash scopes.
fn emit(loops: &[LoopSpec]) -> Module {
    let mut mb = ModuleBuilder::new("kloops");
    let mut f = mb.function("main", vec![], None);
    let bufs: Vec<_> = loops
        .iter()
        .map(|l| f.malloc(Value::i64(i64::from(l.trips) * 4)))
        .collect();
    let mut pred = f.current_block();
    for (k, (l, &buf)) in loops.iter().zip(&bufs).enumerate() {
        let header = f.create_block(format!("h{k}"));
        let body = f.create_block(format!("b{k}"));
        let next = f.create_block(format!("n{k}"));
        f.br(header);
        f.switch_to(header);
        let i = f.phi(Type::I32, vec![(pred, Value::i32(0))]);
        let c = f.icmp(IcmpPred::Slt, Type::I32, i, Value::i32(l.trips as i32));
        f.cond_br(c, body, next);
        f.switch_to(body);
        let v = f.mul(Type::I32, i, Value::i32(l.mult as i32));
        let slot = f.gep(buf, i, 4);
        f.store(Type::I32, v, slot);
        let lv = f.load(Type::I32, slot);
        f.output(Type::I32, lv);
        let i2 = f.add(Type::I32, i, Value::i32(1));
        f.add_incoming(i, body, i2);
        f.br(header);
        f.switch_to(next);
        pred = next;
    }
    f.ret(None);
    f.finish();
    mb.finish().expect("k-loop module verifies")
}

fn traced(module: &Module) -> Trace {
    Interpreter::new(module, ExecConfig::default())
        .golden_run("main", &[])
        .expect("golden run completes")
        .trace
        .expect("golden run is traced")
}

#[test]
fn mutating_one_section_recomputes_only_that_section() {
    let mut rng = StdRng::seed_from_u64(0x1CAC4E);
    for case in 0..20 {
        let k = rng.gen_range(3..=7usize);
        let loops: Vec<LoopSpec> = (0..k)
            .map(|_| LoopSpec {
                trips: rng.gen_range(2..=6),
                mult: rng.gen_range(1..=9),
            })
            .collect();
        let victim = rng.gen_range(0..k);
        let mut mutated = loops.clone();
        mutated[victim].mult += 1;
        assert_ne!(loops, mutated);

        let original = emit(&loops);
        let mutant = emit(&mutated);
        let trace_orig = traced(&original);
        let trace_mut = traced(&mutant);
        let config = EpvfConfig::default();

        // Cold pass over the original: each of the K loop nests is one
        // section run with roots (entry/exit straight sections carry no
        // accesses and are skipped without a lookup).
        let mut cache = SectionCache::in_memory();
        analyze_compositional(&original, &trace_orig, config, &mut cache);
        let cold = cache.stats();
        assert_eq!(cold.sections, k as u64, "case {case}: one run per loop");
        assert_eq!(cold.misses, k as u64, "case {case}: all cold");
        assert_eq!(cold.hits, 0, "case {case}");

        // Warm pass over the *mutant*: exactly the victim's section key
        // changes, so exactly one miss.
        let warm = analyze_compositional(&mutant, &trace_mut, config, &mut cache);
        let s = cache.stats();
        let (dh, dm, ds) = (
            s.hits - cold.hits,
            s.misses - cold.misses,
            s.sections - cold.sections,
        );
        assert_eq!(ds, k as u64, "case {case}");
        assert_eq!(
            dm, 1,
            "case {case} (victim {victim} of {k}): only the mutated loop may recompute"
        );
        assert_eq!(dh, k as u64 - 1, "case {case}: every other loop replays");

        // And the warm result is exactly what a cold analysis of the
        // mutant computes — stale reuse would show up here.
        let reference = analyze(&mutant, &trace_mut, config);
        assert_eq!(
            reference.crash_map, warm.crash_map,
            "case {case}: warm-cache mutant diverged from cold reference"
        );
        assert_eq!(
            reference.metrics.epvf.to_bits(),
            warm.metrics.epvf.to_bits()
        );
        assert_eq!(
            reference.metrics.use_crash_bits,
            warm.metrics.use_crash_bits
        );
        assert_eq!(
            reference.metrics.crash_register_bits,
            warm.metrics.crash_register_bits
        );
    }
}

#[test]
fn unmutated_reanalysis_is_all_hits() {
    let loops = vec![
        LoopSpec { trips: 4, mult: 3 },
        LoopSpec { trips: 5, mult: 2 },
        LoopSpec { trips: 3, mult: 7 },
    ];
    let module = emit(&loops);
    let trace = traced(&module);
    let mut cache = SectionCache::in_memory();
    let a = analyze_compositional(&module, &trace, EpvfConfig::default(), &mut cache);
    let b = analyze_compositional(&module, &trace, EpvfConfig::default(), &mut cache);
    let s = cache.stats();
    assert_eq!(s.misses, 3, "first pass computes each loop");
    assert_eq!(s.hits, 3, "second pass replays each loop");
    assert_eq!(a.crash_map, b.crash_map);
}

#[test]
fn cache_counters_obey_the_conservation_laws() {
    // All `analyze.cache.*` updates in this process (this test plus its
    // neighbors, in any interleaving) must keep the telemetry laws intact:
    // hits + misses == sections, stored <= misses, corrupt <= misses.
    let loops = vec![
        LoopSpec { trips: 3, mult: 2 },
        LoopSpec { trips: 4, mult: 5 },
    ];
    let module = emit(&loops);
    let trace = traced(&module);
    let mut cache = SectionCache::in_memory();
    analyze_compositional(&module, &trace, EpvfConfig::default(), &mut cache);
    analyze_compositional(&module, &trace, EpvfConfig::default(), &mut cache);
    let snap = epvf_telemetry::global_snapshot();
    assert!(
        snap.counter("analyze.cache.sections") >= 4,
        "this test alone contributes 4"
    );
    let violations = snap.check_conservation();
    assert!(
        violations.is_empty(),
        "conservation violated: {violations:?}"
    );
}
