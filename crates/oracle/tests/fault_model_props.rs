//! Property tests for the fault-model layer.
//!
//! Three families, per ISSUE 7 satellite 1:
//!
//! * **Lowering round-trip** — proptest over arbitrary specs: every model
//!   lowers to its advertised effect shape, register-model masks stay
//!   inside the operand width and XOR-restore the injected value, burst
//!   and ECC masks have the promised population counts, and canonical
//!   names survive a parse round trip.
//! * **Enumeration totality** — over a seeded [`Recipe`] corpus, every
//!   spec a model enumerates replays to a concrete outcome without panic
//!   (the exhaustive sweep covers the whole universe).
//! * **Determinism** — the same sweep is identical with 1 and 4 worker
//!   threads, extending the byte-identical contract to every model.

use epvf_core::{parse_fault_model, BurstFlip, EccWord, FaultModel, SingleBitFlip, StoreAddr};
use epvf_interp::{FaultEffect, InjectionSpec};
use epvf_llfi::{Campaign, CampaignConfig, CampaignError};
use epvf_oracle::{sweep, GenConfig, Recipe};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = (InjectionSpec, u32)> {
    // Width 1..=64, bit strictly inside it — the contract site tables
    // uphold: `points()` bounds the bit coordinate.
    (1u32..=64).prop_flat_map(|width| {
        (any::<u64>(), 0usize..3, 0..width).prop_map(move |(dyn_idx, slot, bit)| {
            (
                InjectionSpec {
                    dyn_idx,
                    operand_slot: slot,
                    bit: bit as u8,
                },
                width,
            )
        })
    })
}

fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    /// Register models (bitflip, burst) lower to an operand XOR whose mask
    /// is nonzero, confined to the operand width, and involutive: applying
    /// the fault twice restores any injected value.
    #[test]
    fn register_masks_are_confined_and_involutive(
        (spec, width) in spec_strategy(),
        burst_bits in 2u32..=8,
        value in any::<u64>(),
    ) {
        let models: [Box<dyn FaultModel>; 2] =
            [Box::new(SingleBitFlip), Box::new(BurstFlip { bits: burst_bits })];
        for m in &models {
            let fault = m.lower(spec, width);
            prop_assert_eq!(fault.dyn_idx, spec.dyn_idx);
            let FaultEffect::OperandXor { slot, mask } = fault.effect else {
                return Err(TestCaseError::fail(format!("{} lowers to OperandXor", m.name())));
            };
            prop_assert_eq!(slot, spec.operand_slot);
            prop_assert_ne!(mask, 0, "{} mask must flip something", m.name());
            prop_assert_eq!(
                mask & !width_mask(width), 0,
                "{} mask escapes a {}-bit operand", m.name(), width
            );
            prop_assert_eq!((value ^ mask) ^ mask, value, "XOR round trip");
        }
    }

    /// Burst masks have exactly `min(bits, width)` set bits — wrapping
    /// within a narrow operand collapses, never escapes.
    #[test]
    fn burst_mask_popcount_is_min_bits_width(
        (spec, width) in spec_strategy(),
        bits in 2u32..=8,
    ) {
        let m = BurstFlip { bits };
        let FaultEffect::OperandXor { mask, .. } = m.lower(spec, width).effect else {
            return Err(TestCaseError::fail("burst lowers to OperandXor"));
        };
        prop_assert_eq!(mask.count_ones(), bits.min(width));
    }

    /// ECC masks are adjacent double-bit patterns (mod word width) — the
    /// uncorrectable SEC-DED class by construction — and carry the model's
    /// window unchanged.
    #[test]
    fn ecc_masks_are_uncorrectable_double_bits(
        (spec, width) in spec_strategy(),
        window in 1u64..10_000,
    ) {
        prop_assume!(width >= 2);
        let m = EccWord { window };
        let FaultEffect::EccFlip { mask, window: w } = m.lower(spec, width).effect else {
            return Err(TestCaseError::fail("ecc lowers to EccFlip"));
        };
        prop_assert_eq!(w, window);
        prop_assert_eq!(mask.count_ones(), 2, "SEC-DED must not correct the strike");
        prop_assert_eq!(mask & !width_mask(width), 0, "mask stays inside the word");
        // Adjacency mod width: some rotation of the mask is 0b11.
        let b = spec.bit as u32 % width;
        prop_assert_eq!(mask, (1u64 << b) | (1u64 << ((b + 1) % width)));
    }

    /// Store-address faults flip exactly one address bit, independent of
    /// the operand width.
    #[test]
    fn store_addr_masks_are_single_bits((spec, width) in spec_strategy()) {
        let FaultEffect::AddrXor { mask } = StoreAddr.lower(spec, width).effect else {
            return Err(TestCaseError::fail("store-addr lowers to AddrXor"));
        };
        prop_assert_eq!(mask.count_ones(), 1);
        prop_assert_eq!(mask, 1u64 << (spec.bit & 63));
    }

    /// Canonical names round-trip through the parser for every
    /// parameterization.
    #[test]
    fn names_round_trip_through_parser(bits in 2u32..=8, window in 1u64..10_000) {
        let models: [Box<dyn FaultModel>; 3] = [
            Box::new(BurstFlip { bits }),
            Box::new(EccWord { window }),
            Box::new(SingleBitFlip),
        ];
        for m in &models {
            let name = m.name();
            let parsed = parse_fault_model(&name)
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
            prop_assert_eq!(parsed.name(), name);
        }
    }
}

const MODELS: [&str; 6] = [
    "bitflip",
    "burst:3",
    "skip",
    "wrong-branch",
    "store-addr",
    "ecc:50",
];

/// Every spec every model enumerates on a generated program replays to a
/// concrete outcome (no panic, nothing unexecuted), and the sweep is
/// byte-identical across worker-thread counts.
#[test]
fn enumeration_totality_and_thread_determinism_on_recipe_corpus() {
    let mut swept_nonempty = 0u32;
    for seed in [3u64, 11, 42, 2026] {
        let mut rng = StdRng::seed_from_u64(seed);
        let recipe = Recipe::random(&mut rng, &GenConfig::default());
        let module = recipe.emit();
        for model_str in MODELS {
            let model = parse_fault_model(model_str).expect("model parses");
            let serial_cfg = CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            };
            let serial = match Campaign::with_model(&module, "main", &[], serial_cfg, model.clone())
            {
                Ok(c) => c,
                // A recipe with no stores (or no conditionals) is a
                // vacuously empty universe for some models, and the
                // campaign refuses to build — legitimate, not a
                // totality failure.
                Err(CampaignError::NoInjectableSites) => continue,
                Err(e) => panic!("seed {seed} under {model_str}: {e:?}"),
            };
            let gt1 = sweep(&serial, 0);
            assert!(
                gt1.is_exhaustive(),
                "seed {seed} under {model_str}: {} of {} specs executed",
                gt1.runs.len(),
                gt1.universe
            );
            let parallel_cfg = CampaignConfig {
                threads: 4,
                ..CampaignConfig::default()
            };
            let parallel = Campaign::with_model(&module, "main", &[], parallel_cfg, model)
                .expect("golden run completes");
            let gt4 = sweep(&parallel, 0);
            assert_eq!(
                gt1.runs, gt4.runs,
                "seed {seed} under {model_str}: sweep depends on thread count"
            );
            if !gt1.runs.is_empty() {
                swept_nonempty += 1;
            }
        }
    }
    // The corpus must actually exercise the models: most (recipe, model)
    // pairs should enumerate a nonempty universe.
    assert!(
        swept_nonempty >= 12,
        "only {swept_nonempty} nonempty sweeps — corpus too thin"
    );
}
