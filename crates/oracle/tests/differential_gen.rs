//! Generator-driven differential validation: hundreds of random well-typed
//! IR programs are swept exhaustively and the crash model is scored against
//! ground truth on every one. Any hard-invariant violation is shrunk to the
//! smallest failing recipe and dumped as a replayable repro.
//!
//! Scoring uses `CrashScope::AllAccesses`: random programs are dense in
//! stores that never reach an output, so the paper's ACE-only scoping would
//! measure its documented coverage gap (§VI-B, lavaMD/lulesh in Fig. 8)
//! instead of the boundary/propagation models under test.
//!
//! `EPVF_ORACLE_GEN_PROGRAMS` overrides the random-program count (CI runs
//! 256; the default keeps `cargo test` quick). Calibration on 200 programs
//! (777,964 flips): pooled recall 0.9728 / precision 0.9844, worst single
//! program 0.963 / 0.982, zero hard violations.

use epvf_core::{CrashScope, EpvfConfig};
use epvf_oracle::{check_module_with, Confusion, GenConfig, OracleOutcome, Recipe};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

const CORPUS: &str = include_str!("../proptest-regressions/differential_gen.txt");

fn scoring_config() -> EpvfConfig {
    EpvfConfig {
        scope: CrashScope::AllAccesses,
        ..EpvfConfig::default()
    }
}

fn check_recipe(recipe: &Recipe) -> OracleOutcome {
    let module = recipe.emit();
    check_module_with(&module, "main", &[], 4, scoring_config())
}

fn program_budget() -> usize {
    std::env::var("EPVF_ORACLE_GEN_PROGRAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// On a hard violation, shrink to the minimal failing recipe, write a
/// replayable repro bundle, and panic with the recipe line to append to the
/// regression corpus.
fn fail_hard(recipe: &Recipe, origin: &str) -> ! {
    let still_fails = |r: &Recipe| !check_recipe(r).hard_violations.is_empty();
    let min = recipe.shrink(still_fails);
    let outcome = check_recipe(&min);
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("oracle-repros");
    std::fs::create_dir_all(&dir).ok();
    let mut dump = format!("# shrunk recipe: {min}\n# origin: {origin}\n");
    for v in &outcome.hard_violations {
        dump.push_str(&format!("# violation: {:?} {}\n", v.spec, v.detail));
    }
    dump.push_str(&format!("{}", min.emit()));
    let path = dir.join("gen-hard-violation.txt");
    std::fs::write(&path, &dump).ok();
    panic!(
        "hard invariant violated ({origin}); shrunk recipe `{min}` — append it to \
         crates/oracle/proptest-regressions/differential_gen.txt (dump: {})\n{}",
        path.display(),
        outcome
            .hard_violations
            .iter()
            .map(|v| format!("  {:?} {}", v.spec, v.detail))
            .collect::<Vec<_>>()
            .join("\n"),
    )
}

#[test]
fn regression_corpus_replays_clean() {
    let mut replayed = 0;
    for line in CORPUS.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let recipe: Recipe = line.parse().expect("corpus line parses");
        let outcome = check_recipe(&recipe);
        assert!(outcome.ground_truth.is_exhaustive());
        if !outcome.hard_violations.is_empty() {
            fail_hard(&recipe, "regression corpus");
        }
        replayed += 1;
    }
    assert!(replayed >= 3, "corpus should stay seeded, got {replayed}");
}

#[test]
fn random_programs_match_ground_truth() {
    let n = program_budget();
    let mut rng = StdRng::seed_from_u64(0x0E9F_4D01);
    let mut pooled = Confusion::default();
    let mut masked_sdc = 0u64;
    let mut universe = 0u64;
    let mut worst: Option<(f64, Recipe)> = None;
    for i in 0..n {
        let recipe = Recipe::random(&mut rng, &GenConfig::default());
        let outcome = check_recipe(&recipe);
        assert!(outcome.ground_truth.is_exhaustive(), "program {i}");
        if !outcome.hard_violations.is_empty() {
            fail_hard(&recipe, &format!("random program {i}"));
        }
        let c = outcome.report.confusion;
        // Per-program floor, only meaningful when crashes exist to recall.
        if c.tp + c.fn_ > 0 {
            let score = c.recall().min(c.precision());
            if worst.as_ref().is_none_or(|(w, _)| score < *w) {
                worst = Some((score, recipe.clone()));
            }
            assert!(
                c.recall() >= 0.90 && c.precision() >= 0.90,
                "program {i} recipe `{recipe}`: recall {:.3} precision {:.3} ({c:?})",
                c.recall(),
                c.precision(),
            );
        }
        pooled.merge(c);
        masked_sdc += outcome.report.masked_sdc;
        universe += outcome.ground_truth.universe;
    }
    assert!(
        pooled.recall() >= 0.95 && pooled.precision() >= 0.95,
        "pooled over {n} programs ({universe} flips): recall {:.4} precision {:.4}",
        pooled.recall(),
        pooled.precision(),
    );
    // ACE-masked claims contradicted by an SDC stay rare (§VI-B "other
    // masking"); calibration sees ~0.02% of flips.
    assert!(
        (masked_sdc as f64) < 0.005 * universe as f64,
        "masked-SDC disagreements exploded: {masked_sdc} of {universe} flips"
    );
    if let Some((score, recipe)) = worst {
        println!("worst program: min(recall,precision)={score:.3} recipe `{recipe}`");
    }
}

#[test]
fn shrinking_is_wired_to_the_real_checker() {
    // End-to-end shrink on a synthetic predicate over the *real* oracle
    // output: "fails" iff the program still predicts at least one crash.
    // Shrinking must preserve the property while deleting genes.
    let recipe: Recipe = "C:7 B:0:0:1 L:0:2 S:1:3:0 D:1:0:2 O:1"
        .parse()
        .expect("literal recipe parses");
    let fails = |r: &Recipe| {
        let o = check_recipe(r);
        o.report.confusion.tp + o.report.confusion.fn_ > 0
    };
    assert!(fails(&recipe), "seed recipe must crash somewhere");
    let min = recipe.shrink(fails);
    assert!(fails(&min), "shrunk recipe keeps the property");
    assert!(
        min.ops.len() < recipe.ops.len(),
        "prelude loads alone crash, so genes must shrink: `{min}`"
    );
}
