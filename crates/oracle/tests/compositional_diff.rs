//! Differential proof that the compositional engine is a refactoring, not
//! an approximation: on every bundled workload and on hundreds of random
//! well-typed generator programs, `analyze_compositional` must produce the
//! *same `CrashMap`* (not just the same scalars) as the monolithic
//! `analyze`, cold and warm, through an in-memory and a persisted section
//! cache, and its aggregates must agree with the parallel pass at
//! `--threads 1` and `4`.
//!
//! `EPVF_COMPOSE_GEN_PROGRAMS` overrides the random-program count
//! (default 200).

use epvf_core::{
    analyze, analyze_compositional, analyze_threaded, CrashScope, EpvfConfig, EpvfResult,
    SectionCache,
};
use epvf_interp::{ExecConfig, Interpreter, Trace};
use epvf_ir::Module;
use epvf_oracle::{GenConfig, Recipe};
use epvf_workloads::{extended_suite, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn program_budget() -> usize {
    std::env::var("EPVF_COMPOSE_GEN_PROGRAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Timing fields aside, every scalar the analysis reports must agree.
fn assert_metrics_eq(a: &EpvfResult, b: &EpvfResult, what: &str) {
    let (ma, mb) = (&a.metrics, &b.metrics);
    assert_eq!(ma.dyn_insts, mb.dyn_insts, "{what}: dyn_insts");
    assert_eq!(ma.ddg_nodes, mb.ddg_nodes, "{what}: ddg_nodes");
    assert_eq!(ma.ace_nodes, mb.ace_nodes, "{what}: ace_nodes");
    assert_eq!(
        ma.total_register_bits, mb.total_register_bits,
        "{what}: total_register_bits"
    );
    assert_eq!(
        ma.ace_register_bits, mb.ace_register_bits,
        "{what}: ace_register_bits"
    );
    assert_eq!(
        ma.crash_register_bits, mb.crash_register_bits,
        "{what}: crash_register_bits"
    );
    assert_eq!(
        ma.trace_use_bits, mb.trace_use_bits,
        "{what}: trace_use_bits"
    );
    assert_eq!(
        ma.use_crash_bits, mb.use_crash_bits,
        "{what}: use_crash_bits"
    );
    assert_eq!(ma.pvf.to_bits(), mb.pvf.to_bits(), "{what}: pvf");
    assert_eq!(ma.epvf.to_bits(), mb.epvf.to_bits(), "{what}: epvf");
    assert_eq!(
        ma.crash_rate_estimate.to_bits(),
        mb.crash_rate_estimate.to_bits(),
        "{what}: crash_rate_estimate"
    );
}

/// The full equality battery for one `(module, trace, config)`:
/// monolithic == composed-cold == composed-warm, hit/miss accounting is
/// conserved, and the warm pass replays every section.
fn check_one(module: &Module, trace: &Trace, config: EpvfConfig, what: &str) {
    let mono = analyze(module, trace, config);
    let mut cache = SectionCache::in_memory();
    let cold = analyze_compositional(module, trace, config, &mut cache);
    assert_eq!(
        mono.crash_map, cold.crash_map,
        "{what}: cold composed CrashMap diverged from monolithic"
    );
    assert_metrics_eq(&mono, &cold, &format!("{what} (cold)"));
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, s.sections, "{what}: conservation");
    assert_eq!(s.hits, 0, "{what}: a fresh cache cannot hit");

    let warm = analyze_compositional(module, trace, config, &mut cache);
    assert_eq!(
        mono.crash_map, warm.crash_map,
        "{what}: warm replay diverged from monolithic"
    );
    assert_metrics_eq(&mono, &warm, &format!("{what} (warm)"));
    let s2 = cache.stats();
    assert_eq!(
        s2.hits + s2.misses,
        s2.sections,
        "{what}: conservation (warm)"
    );
    assert_eq!(
        s2.hits, s.sections,
        "{what}: an identical re-analysis must replay every section"
    );
    assert_eq!(
        s2.misses, s.misses,
        "{what}: warm pass recomputed something"
    );
}

#[test]
fn composed_equals_monolithic_on_every_workload() {
    for w in extended_suite(Scale::Tiny) {
        let golden = w.golden();
        let trace = golden.trace.as_ref().expect("traced");
        check_one(&w.module, trace, EpvfConfig::default(), w.name);
        // The crash scope changes which accesses seed propagation; the
        // compositional split must be equality-preserving under both.
        check_one(
            &w.module,
            trace,
            EpvfConfig {
                scope: CrashScope::AllAccesses,
                ..EpvfConfig::default()
            },
            &format!("{} (all-accesses)", w.name),
        );
    }
}

#[test]
fn composed_agrees_with_threaded_analysis() {
    // The parallel pass guarantees aggregate (not per-entry) equality with
    // serial — `crates/core/tests/parallel_propagation.rs` — so the
    // compositional result must match those aggregates at 1 and 4 threads.
    for w in extended_suite(Scale::Tiny) {
        let golden = w.golden();
        let trace = golden.trace.as_ref().expect("traced");
        let mut cache = SectionCache::in_memory();
        let composed = analyze_compositional(&w.module, trace, EpvfConfig::default(), &mut cache);
        for threads in [1usize, 4] {
            let par = analyze_threaded(&w.module, trace, EpvfConfig::default(), threads);
            assert_metrics_eq(
                &par,
                &composed,
                &format!("{} vs --threads {threads}", w.name),
            );
            if threads == 1 {
                // One worker is exactly the serial pass, so the full map
                // must match, not just the sums.
                assert_eq!(par.crash_map, composed.crash_map, "{}", w.name);
            }
        }
    }
}

#[test]
fn persisted_cache_round_trips_across_processes() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("compositional-diff-cache");
    let _ = std::fs::remove_dir_all(&dir);
    for w in extended_suite(Scale::Tiny).into_iter().take(3) {
        let golden = w.golden();
        let trace = golden.trace.as_ref().expect("traced");
        let mono = analyze(&w.module, trace, EpvfConfig::default());

        let mut cold_cache = SectionCache::persistent(&dir).expect("cache dir");
        let cold = analyze_compositional(&w.module, trace, EpvfConfig::default(), &mut cold_cache);
        assert_eq!(mono.crash_map, cold.crash_map, "{} (persist cold)", w.name);
        let cold_stats = cold_cache.stats();
        drop(cold_cache);

        // A brand-new handle on the same directory simulates a second
        // process: everything must come back from disk.
        let mut warm_cache = SectionCache::persistent(&dir).expect("cache dir");
        let warm = analyze_compositional(&w.module, trace, EpvfConfig::default(), &mut warm_cache);
        assert_eq!(mono.crash_map, warm.crash_map, "{} (persist warm)", w.name);
        let s = warm_cache.stats();
        assert_eq!(
            s.hits, cold_stats.sections,
            "{}: disk replay incomplete",
            w.name
        );
        assert_eq!(s.misses, 0, "{}: disk replay recomputed", w.name);
    }
}

#[test]
fn random_programs_compose_exactly() {
    let n = program_budget();
    let mut rng = StdRng::seed_from_u64(0xC0_5EC7);
    let mut checked = 0usize;
    for i in 0..n {
        let recipe = Recipe::random(&mut rng, &GenConfig::default());
        let module = recipe.emit();
        let run = Interpreter::new(&module, ExecConfig::default())
            .golden_run("main", &[])
            .unwrap_or_else(|e| panic!("recipe {i} `{recipe}` golden run failed: {e}"));
        let Some(trace) = run.trace.as_ref() else {
            panic!("recipe {i} `{recipe}` produced no trace");
        };
        // Random programs are dense in stores that never reach an output,
        // so AllAccesses exercises far more sections than the paper-default
        // scope; check both.
        for (scope, tag) in [
            (CrashScope::AceOnly, "ace-only"),
            (CrashScope::AllAccesses, "all-accesses"),
        ] {
            let config = EpvfConfig {
                scope,
                ..EpvfConfig::default()
            };
            check_one(
                &module,
                trace,
                config,
                &format!("recipe {i} `{recipe}` {tag}"),
            );
        }
        checked += 1;
    }
    assert!(checked >= n, "checked {checked} of {n} programs");
    println!("compositional equality held on {checked} generated programs");
}
