//! Merge-algebra property tests for sharded campaigns, driven by the
//! generated-program corpus.
//!
//! The byte-identical-merge contract rests on `ShardOutcomes` /
//! `CampaignAggregate` forming a commutative monoid under `merge` whose
//! fold is invariant in the shard count. These tests check the laws on
//! real campaign results over random `Recipe` programs rather than
//! synthetic outcome maps, so any outcome class the interpreter can
//! actually produce (benign, SDC, every crash kind, detection) flows
//! through the algebra.

use epvf_interp::InjectionSpec;
use epvf_llfi::{
    Campaign, CampaignAggregate, CampaignConfig, CampaignError, CampaignResult, MergeError,
    RunSession, ShardOutcomes, ShardSpec,
};
use epvf_oracle::{GenConfig, Recipe};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Build campaigns over a small corpus of generated programs and hand
/// each (campaign, drawn specs, whole-campaign result) to `f`. Recipes
/// whose emitted module has no injectable sites are skipped — a vacuous
/// universe is legitimate generator output, not a merge-law failure.
fn for_corpus(mut f: impl FnMut(&Campaign<'_>, &[InjectionSpec], &CampaignResult)) {
    let mut exercised = 0u32;
    for seed in [2u64, 9, 41, 77, 2026] {
        let mut rng = StdRng::seed_from_u64(seed);
        let recipe = Recipe::random(&mut rng, &GenConfig::default());
        let module = recipe.emit();
        let campaign = match Campaign::new(&module, "main", &[], CampaignConfig::default()) {
            Ok(c) => c,
            Err(CampaignError::NoInjectableSites) => continue,
            Err(e) => panic!("corpus seed {seed}: {e:?}"),
        };
        let specs = campaign.draw_specs(90, seed ^ 0xA5A5);
        if specs.is_empty() {
            continue;
        }
        let whole = campaign.run_specs(&specs);
        f(&campaign, &specs, &whole);
        exercised += 1;
    }
    assert!(exercised >= 3, "corpus too thin: {exercised} programs ran");
}

/// Run one shard's strided slice in-process, exactly as `epvf shard`
/// does: local spec list plus a shard-geometry session so every WAL-level
/// index is global.
fn run_shard(campaign: &Campaign<'_>, specs: &[InjectionSpec], shard: ShardSpec) -> CampaignResult {
    let local: Vec<InjectionSpec> = shard.indices(specs.len()).map(|g| specs[g]).collect();
    let session = RunSession {
        recovered: BTreeMap::new(),
        wal: None,
        index_base: shard.index(),
        index_stride: shard.of(),
        ..RunSession::default()
    };
    campaign.run_specs_session(&local, &session)
}

fn parts(campaign: &Campaign<'_>, specs: &[InjectionSpec], of: usize) -> Vec<ShardOutcomes> {
    (0..of)
        .map(|i| {
            let shard = ShardSpec::new(i, of).unwrap();
            ShardOutcomes::from_run(shard, &run_shard(campaign, specs, shard))
        })
        .collect()
}

/// Folding the shards in any order — forward, reverse, or a fixed
/// shuffle — produces the same union: `merge` is commutative.
#[test]
fn shard_merge_is_commutative() {
    for_corpus(|campaign, specs, _whole| {
        let shards = parts(campaign, specs, 5);
        let fold = |order: &[usize]| -> ShardOutcomes {
            order.iter().fold(ShardOutcomes::empty(), |acc, &i| {
                acc.merge(shards[i].clone()).expect("disjoint shards")
            })
        };
        let forward = fold(&[0, 1, 2, 3, 4]);
        assert_eq!(forward, fold(&[4, 3, 2, 1, 0]));
        assert_eq!(forward, fold(&[2, 4, 0, 3, 1]));
    });
}

/// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` on real three-shard partitions.
#[test]
fn shard_merge_is_associative() {
    for_corpus(|campaign, specs, _whole| {
        let shards = parts(campaign, specs, 3);
        let [a, b, c] = [shards[0].clone(), shards[1].clone(), shards[2].clone()];
        let left = a
            .clone()
            .merge(b.clone())
            .unwrap()
            .merge(c.clone())
            .unwrap();
        let right = a.merge(b.merge(c).unwrap()).unwrap();
        assert_eq!(left, right);
    });
}

/// `empty` is a two-sided identity, and merging a shard with itself is
/// idempotent (agreeing duplicates collapse rather than conflict —
/// exactly the property a re-run shard WAL relies on).
#[test]
fn shard_merge_identity_and_idempotence() {
    for_corpus(|campaign, specs, _whole| {
        let spec = ShardSpec::new(1, 3).unwrap();
        let shard = ShardOutcomes::from_run(spec, &run_shard(campaign, specs, spec));
        assert_eq!(ShardOutcomes::empty().merge(shard.clone()).unwrap(), shard);
        assert_eq!(shard.clone().merge(ShardOutcomes::empty()).unwrap(), shard);
        assert_eq!(shard.clone().merge(shard.clone()).unwrap(), shard);
    });
}

/// The fold of any shard count — 1, 2, or 7 — reassembles exactly the
/// single-process `CampaignResult`: partitioning is invisible in the
/// merged output.
#[test]
fn merged_result_is_invariant_in_the_shard_count() {
    for_corpus(|campaign, specs, whole| {
        for of in [1usize, 2, 7] {
            let union = parts(campaign, specs, of)
                .into_iter()
                .try_fold(ShardOutcomes::empty(), ShardOutcomes::merge)
                .expect("disjoint shards");
            let merged = union.into_result(specs).expect("total");
            assert_eq!(
                merged.runs, whole.runs,
                "{of}-shard fold must equal the single-process result"
            );
        }
    });
}

/// A fold missing one shard is not silently accepted: `into_result`
/// reports the gap, naming how many runs arrived.
#[test]
fn incomplete_shard_sets_are_rejected() {
    for_corpus(|campaign, specs, _whole| {
        let of = 4;
        let union = parts(campaign, specs, of)
            .into_iter()
            .skip(1) // drop shard 0
            .try_fold(ShardOutcomes::empty(), ShardOutcomes::merge)
            .expect("disjoint shards");
        let have = union.len();
        match union.into_result(specs) {
            Err(MergeError::Incomplete { have: h, want, .. }) => {
                assert_eq!(h, have);
                assert_eq!(want, specs.len());
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
    });
}

/// `CampaignAggregate` forms the same commutative monoid, and the merged
/// aggregate both equals the whole-campaign aggregate and satisfies its
/// own internal conservation checks.
#[test]
fn aggregate_merge_laws_hold_on_the_corpus() {
    for_corpus(|campaign, specs, whole| {
        let whole_agg = CampaignAggregate::from_result(whole, campaign.sites(), None);
        whole_agg.check().expect("whole aggregate consistent");

        for of in [1usize, 2, 7] {
            let aggs: Vec<CampaignAggregate> = (0..of)
                .map(|i| {
                    let shard = ShardSpec::new(i, of).unwrap();
                    let part = run_shard(campaign, specs, shard);
                    let agg = CampaignAggregate::from_result(&part, campaign.sites(), None);
                    agg.check().expect("shard aggregate consistent");
                    agg
                })
                .collect();
            let forward = aggs
                .iter()
                .fold(CampaignAggregate::empty(), |acc, a| acc.merge(a));
            let reverse = aggs
                .iter()
                .rev()
                .fold(CampaignAggregate::empty(), |acc, a| acc.merge(a));
            assert_eq!(forward, reverse, "aggregate merge is commutative");
            assert_eq!(
                forward, whole_agg,
                "{of} shard aggregates fold to the whole campaign"
            );
            forward.check().expect("merged aggregate consistent");
        }
        // Identity.
        assert_eq!(CampaignAggregate::empty().merge(&whole_agg), whole_agg);
        assert_eq!(whole_agg.merge(&CampaignAggregate::empty()), whole_agg);
    });
}
