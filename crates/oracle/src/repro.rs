//! Replayable repro files for oracle disagreements.
//!
//! A repro is a single self-contained text file: a `#`-prefixed header
//! (workload label, entry, args, the `dyn:slot:bit` spec, observed outcome,
//! the model's claim, and the injected static instruction as an IR snippet),
//! a `---` separator, and the full module in textual IR. Feeding the file to
//! `epvf oracle --replay <file>` re-executes exactly that flip and compares
//! the outcome against the recorded one.

use crate::diff::Disagreement;
use crate::ground_truth::outcome_label;
use epvf_interp::{InjectionSpec, Trace};
use epvf_ir::{parse_module, Module};
use epvf_llfi::{Campaign, CampaignConfig, InjOutcome};
use std::io;
use std::path::{Path, PathBuf};

/// The run a disagreement came from, borrowed while rendering repros.
#[derive(Debug, Clone, Copy)]
pub struct ReproContext<'a> {
    /// Human label (e.g. `lud:tiny` or a generator recipe string).
    pub label: &'a str,
    /// The program.
    pub module: &'a Module,
    /// Entry function.
    pub entry: &'a str,
    /// Entry arguments.
    pub args: &'a [u64],
    /// Golden trace (for the instruction snippet).
    pub trace: &'a Trace,
}

/// A parsed repro file, ready to re-execute.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The program.
    pub module: Module,
    /// Entry function.
    pub entry: String,
    /// Entry arguments.
    pub args: Vec<u64>,
    /// The flip.
    pub spec: InjectionSpec,
    /// Outcome label recorded when the disagreement was found.
    pub observed: String,
}

/// Render one disagreement as a repro file body.
pub fn render_repro(ctx: &ReproContext<'_>, d: &Disagreement) -> String {
    let mut head = String::new();
    head.push_str("# epvf-oracle repro v1\n");
    head.push_str(&format!("# label: {}\n", ctx.label));
    head.push_str(&format!("# entry: {}\n", ctx.entry));
    let args: Vec<String> = ctx.args.iter().map(u64::to_string).collect();
    head.push_str(&format!("# args: {}\n", args.join(" ")));
    head.push_str(&format!("# spec: {}\n", d.spec));
    head.push_str(&format!("# kind: {}\n", d.kind.label()));
    head.push_str(&format!("# observed: {}\n", outcome_label(d.outcome)));
    match d.constraint {
        Some(c) => head.push_str(&format!(
            "# predicted: crash outside [{:#x}, {:#x}] (golden {:#x}, width {})\n",
            c.range.lo, c.range.hi, c.value, c.width
        )),
        None => head.push_str("# predicted: no constraint on this read\n"),
    }
    if let Some(rec) = ctx.trace.get(d.spec.dyn_idx) {
        let inst = ctx.module.functions[rec.func.index()]
            .insts()
            .find(|i| i.sid == rec.sid);
        if let Some(inst) = inst {
            head.push_str(&format!(
                "# inst: {inst}   (operand slot {}, bit {})\n",
                d.spec.operand_slot, d.spec.bit
            ));
        }
    }
    head.push_str("---\n");
    head.push_str(&format!("{}", ctx.module));
    head
}

/// Write every disagreement to `dir` as `<prefix>-NNN-<kind>.repro`,
/// creating the directory; returns the written paths.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_repros(
    dir: &Path,
    prefix: &str,
    ctx: &ReproContext<'_>,
    disagreements: &[Disagreement],
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for (i, d) in disagreements.iter().enumerate() {
        let path = dir.join(format!("{prefix}-{i:03}-{}.repro", d.kind.label()));
        std::fs::write(&path, render_repro(ctx, d))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Parse a repro file produced by [`render_repro`].
///
/// # Errors
/// Returns a message for a malformed header, missing separator, or IR that
/// fails to parse.
pub fn parse_repro(text: &str) -> Result<Repro, String> {
    let (head, body) = text
        .split_once("\n---\n")
        .ok_or("repro file has no `---` separator")?;
    let field = |key: &str| {
        head.lines()
            .find_map(|l| l.strip_prefix(&format!("# {key}: ")))
            .map(str::trim)
    };
    let spec: InjectionSpec = field("spec")
        .ok_or("repro header missing `# spec:`")?
        .parse()?;
    let entry = field("entry").unwrap_or("main").to_string();
    let args = field("args")
        .unwrap_or("")
        .split_whitespace()
        .map(|a| a.parse().map_err(|e| format!("bad arg `{a}`: {e}")))
        .collect::<Result<Vec<u64>, String>>()?;
    let observed = field("observed").unwrap_or("?").to_string();
    let module = parse_module(body).map_err(|e| format!("repro IR: {e}"))?;
    Ok(Repro {
        module,
        entry,
        args,
        spec,
        observed,
    })
}

/// Re-execute a repro's flip and classify it against a fresh golden run.
///
/// # Errors
/// Returns a message if the golden run fails (corrupt repro).
pub fn replay_repro(repro: &Repro) -> Result<InjOutcome, String> {
    let campaign = Campaign::new(
        &repro.module,
        &repro.entry,
        &repro.args,
        CampaignConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let result = campaign.run_specs(std::slice::from_ref(&repro.spec));
    Ok(result.runs[0].1)
}
