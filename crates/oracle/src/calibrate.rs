//! Calibration of sampled campaigns against exhaustive ground truth.
//!
//! The adaptive sampler's whole value proposition is "the same answer as
//! exhaustive enumeration, inside the reported confidence interval, for a
//! fraction of the runs". This module *checks* that proposition: run the
//! exhaustive sweep (the oracle's usual product), run the adaptive sampled
//! campaign, and score the sampled point estimates against the exact
//! population rates using the sampler's own reported Clopper-Pearson
//! bounds — the conservative interval, so a failed calibration means the
//! estimator is genuinely off, not that the interval was optimistically
//! narrow. `epvf oracle --calibrate <w>` and the `adaptive_campaign`
//! bench harness both report through this type.

use crate::ground_truth::GroundTruth;
use epvf_llfi::{InjOutcome, SampledCampaign};

/// Sampled-vs-exhaustive scorecard for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Exact SDC rate over the exhaustive universe.
    pub sdc_truth: f64,
    /// Exact crash rate over the exhaustive universe.
    pub crash_truth: f64,
    /// Sampled SDC estimate error `|p̂ − p|`.
    pub sdc_error: f64,
    /// Sampled crash estimate error `|p̂ − p|`.
    pub crash_error: f64,
    /// Whether the exact SDC rate lies inside the sampled estimate's
    /// Clopper-Pearson interval.
    pub sdc_within_ci: bool,
    /// Whether the exact crash rate lies inside the sampled estimate's
    /// Clopper-Pearson interval.
    pub crash_within_ci: bool,
    /// Runs the sampler executed.
    pub executed: usize,
    /// Runs the exhaustive sweep executed.
    pub exhaustive_runs: usize,
    /// `exhaustive_runs / executed` — the run-count savings factor.
    pub savings: f64,
    /// Whether the sampler met its CI target (vs cap/exhaustion stop).
    pub converged: bool,
}

impl Calibration {
    /// Whether both rates were bracketed by their reported intervals —
    /// the acceptance gate CI jobs assert.
    pub fn passed(&self) -> bool {
        self.sdc_within_ci && self.crash_within_ci
    }

    /// One-paragraph report in the oracle's plain-text style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "calibration: {} ({} sampled vs {} exhaustive, {:.1}x savings)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.executed,
            self.exhaustive_runs,
            self.savings,
        ));
        out.push_str(&format!(
            "  sdc   truth {:.4}  error {:.4}  within-ci {}\n",
            self.sdc_truth, self.sdc_error, self.sdc_within_ci,
        ));
        out.push_str(&format!(
            "  crash truth {:.4}  error {:.4}  within-ci {}\n",
            self.crash_truth, self.crash_error, self.crash_within_ci,
        ));
        out.push_str(&format!(
            "  converged {}\n",
            if self.converged {
                "yes (CI target met)"
            } else {
                "no (stopped on cap/exhaustion)"
            }
        ));
        out
    }
}

/// Score a sampled campaign against exhaustive ground truth of the same
/// workload. `truth` should be an exhaustive sweep ([`GroundTruth::
/// is_exhaustive`]); a subsampled table still works but the "truth" is
/// then itself an estimate, which weakens the verdict.
pub fn calibrate(truth: &GroundTruth, sampled: &SampledCampaign) -> Calibration {
    let n = truth.runs.len().max(1) as f64;
    let sdc_truth = truth.count(|o| o == InjOutcome::Sdc) as f64 / n;
    let crash_truth = truth.count(InjOutcome::is_crash) as f64 / n;
    Calibration {
        sdc_truth,
        crash_truth,
        sdc_error: (sampled.sdc.rate - sdc_truth).abs(),
        crash_error: (sampled.crash.rate - crash_truth).abs(),
        sdc_within_ci: sampled.sdc.brackets(sdc_truth),
        crash_within_ci: sampled.crash.brackets(crash_truth),
        executed: sampled.executed,
        exhaustive_runs: truth.runs.len(),
        savings: if sampled.executed == 0 {
            1.0
        } else {
            truth.runs.len() as f64 / sampled.executed as f64
        },
        converged: sampled.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_ir::{ModuleBuilder, Type, Value};
    use epvf_llfi::{Campaign, CampaignConfig, SamplerConfig};

    fn module() -> epvf_ir::Module {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        let p = f.malloc(Value::i64(64));
        let slot = f.gep(p, Value::i32(3), 8);
        f.store(Type::I64, Value::i64(5), slot);
        let v = f.load(Type::I64, slot);
        let w = f.add(Type::I64, v, Value::i64(9));
        f.output(Type::I64, w);
        f.ret(None);
        f.finish();
        mb.finish().expect("verifies")
    }

    #[test]
    fn sampled_estimates_calibrate_against_exhaustive_truth() {
        let m = module();
        let campaign = Campaign::new(&m, "main", &[], CampaignConfig::default()).expect("golden");
        let truth = crate::sweep(&campaign, 0);
        assert!(truth.is_exhaustive());
        let sampled = campaign.run_adaptive(SamplerConfig {
            target_ci: 0.08,
            pilot: 8,
            batch: 32,
            seed: 2,
            ..SamplerConfig::default()
        });
        let cal = calibrate(&truth, &sampled);
        assert!(cal.passed(), "{}", cal.render());
        assert!(cal.savings >= 1.0);
        assert!(cal.render().contains("PASS"));
    }

    #[test]
    fn exhaustive_degeneration_scores_zero_error() {
        let m = module();
        let campaign = Campaign::new(&m, "main", &[], CampaignConfig::default()).expect("golden");
        let truth = crate::sweep(&campaign, 0);
        // target_ci 0 forces the sampler through the whole population;
        // the "estimate" is then the exact rate.
        let sampled = campaign.run_adaptive(SamplerConfig {
            target_ci: 0.0,
            seed: 1,
            ..SamplerConfig::default()
        });
        let cal = calibrate(&truth, &sampled);
        assert!(cal.passed(), "{}", cal.render());
        assert!(cal.sdc_error < 1e-12 && cal.crash_error < 1e-12);
        assert!((cal.savings - 1.0).abs() < 1e-12);
    }
}
