//! The exhaustive bit-flip ground-truth table.
//!
//! Where the paper samples a few thousand `(site, bit)` pairs per benchmark
//! (§IV-A), the oracle executes *all* of them. This is affordable because
//! the PR 1 replay engine resumes each injected run from the checkpoint
//! nearest its injection point and classifies masked faults at the first
//! golden rendezvous, so an exhaustive sweep of a tiny workload (~10⁵
//! flips) takes seconds.

use epvf_interp::InjectionSpec;
use epvf_llfi::{Campaign, InjOutcome};
use serde::{Deserialize, Serialize};

/// Outcome of every executed `(site, bit)` flip of one workload, in
/// enumeration (trace) order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// One entry per executed flip.
    pub runs: Vec<(InjectionSpec, InjOutcome)>,
    /// Injectable sites in the golden trace.
    pub sites: usize,
    /// Size of the full `(site, bit)` universe — `runs.len()` equals this
    /// when the sweep was exhaustive.
    pub universe: u64,
}

impl GroundTruth {
    /// Whether every `(site, bit)` pair was executed.
    pub fn is_exhaustive(&self) -> bool {
        self.runs.len() as u64 == self.universe
    }

    /// Number of runs with the given outcome predicate.
    pub fn count(&self, pred: impl Fn(InjOutcome) -> bool) -> u64 {
        self.runs.iter().filter(|(_, o)| pred(*o)).count() as u64
    }

    /// Crash / SDC / benign / hang / detected / timed-out / quarantined
    /// counts, in that order. The last two are supervision outcomes —
    /// always zero in a healthy un-watchdogged sweep.
    pub fn tally(&self) -> [u64; 7] {
        let mut t = [0u64; 7];
        for (_, o) in &self.runs {
            match o {
                InjOutcome::Crash(_) => t[0] += 1,
                InjOutcome::Sdc => t[1] += 1,
                InjOutcome::Benign => t[2] += 1,
                InjOutcome::Hang => t[3] += 1,
                InjOutcome::Detected => t[4] += 1,
                InjOutcome::TimedOut(_) => t[5] += 1,
                InjOutcome::Quarantined => t[6] += 1,
            }
        }
        t
    }
}

/// Short human-readable label of an injection outcome, used in oracle
/// reports and repro files (`benign`, `sdc`, `hang`, `detected`,
/// `crash:SF`, `timeout:fuel`, `quarantined` …).
pub fn outcome_label(o: InjOutcome) -> String {
    match o {
        InjOutcome::Benign => "benign".into(),
        InjOutcome::Sdc => "sdc".into(),
        InjOutcome::Hang => "hang".into(),
        InjOutcome::Detected => "detected".into(),
        InjOutcome::Crash(k) => format!("crash:{}", k.label()),
        InjOutcome::TimedOut(k) => format!("timeout:{}", k.label()),
        InjOutcome::Quarantined => "quarantined".into(),
    }
}

/// Execute the ground-truth sweep.
///
/// `limit == 0` (or a limit at least the universe size) runs every
/// `(site, bit)` pair; a smaller positive limit runs a deterministic
/// stride-subsample that still spans the whole trace — the escape hatch for
/// workloads whose universe is too large to execute exhaustively.
pub fn sweep(campaign: &Campaign<'_>, limit: usize) -> GroundTruth {
    let _span = epvf_telemetry::span(epvf_telemetry::Tmr::OracleSweep);
    let universe = campaign.sites().total_bits();
    let specs: Vec<InjectionSpec> = if limit == 0 || limit as u64 >= universe {
        campaign.sites().specs().collect()
    } else {
        let stride = universe.div_ceil(limit as u64).max(1) as usize;
        campaign.sites().specs().step_by(stride).collect()
    };
    epvf_telemetry::add(epvf_telemetry::Ctr::OracleSweepFlips, specs.len() as u64);
    let result = campaign.run_specs(&specs);
    GroundTruth {
        runs: result.runs,
        sites: campaign.sites().len(),
        universe,
    }
}
