//! Property-based IR program generator.
//!
//! Programs are generated as *recipes* — flat lists of [`GenOp`] genes —
//! that expand through [`epvf_ir::ModuleBuilder`] into well-typed modules
//! whose golden runs complete **by construction**: every value reference is
//! taken modulo the live value pool, every load/store index is wrapped
//! `urem`-style into its buffer, divisors are forced odd, shift amounts are
//! masked below the width, and the only back edges are constant-bounded
//! loops. Total emission is what makes shrinking trivial: *any* subsequence
//! of genes is again a valid program, so the shrinker just deletes genes
//! while the failure persists.
//!
//! The gene set deliberately covers the shapes the crash/propagation models
//! care about: arithmetic chains (Table III rows 1–5), GEP address
//! computation over heap buffers (row 6), trunc/ext casts (row 7), branch
//! diamonds (control-flow masking), and phi-carrying loops (the paper's
//! loop-guard masking case).

use epvf_ir::{IcmpPred, Module, ModuleBuilder, Type, Value};
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// Elements per generated heap buffer.
pub const BUF_LEN: u64 = 8;
/// Heap buffers every generated program allocates.
pub const N_BUFS: usize = 2;

/// One gene. All indices are interpreted modulo the relevant pool size at
/// emission time, so every combination is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOp {
    /// Push a constant-derived register (`c | 1` via arithmetic).
    Const(u64),
    /// Binary op: `kind % 9` selects add/sub/mul/and/or/xor/shl/lshr/udiv.
    Bin {
        /// Operation selector.
        kind: u8,
        /// Left operand (pool index).
        a: u16,
        /// Right operand (pool index).
        b: u16,
    },
    /// Truncate to i32 and widen back (`kind % 2`: zext or sext).
    Cast {
        /// Widening selector.
        kind: u8,
        /// Operand (pool index).
        v: u16,
    },
    /// Load from `buf[pool[idx] % BUF_LEN]`.
    Load {
        /// Buffer selector (mod [`N_BUFS`]).
        buf: u8,
        /// Index value (pool index).
        idx: u16,
    },
    /// Store `pool[val]` to `buf[pool[idx] % BUF_LEN]`.
    Store {
        /// Buffer selector (mod [`N_BUFS`]).
        buf: u8,
        /// Index value (pool index).
        idx: u16,
        /// Stored value (pool index).
        val: u16,
    },
    /// A real branch diamond merged by a phi.
    Diamond {
        /// Condition source (pool index; branch on its parity).
        cond: u16,
        /// Then-arm operand (pool index).
        a: u16,
        /// Else-arm operand (pool index).
        b: u16,
    },
    /// A constant-bounded loop summing buffer elements through phis.
    Loop {
        /// Buffer selector (mod [`N_BUFS`]).
        buf: u8,
        /// Iteration count (`1 + iters % 4`).
        iters: u8,
    },
    /// Emit `pool[v]` through an `output` instruction (an ACE root).
    Output(u16),
}

/// Generation limits.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum genes per recipe.
    pub max_ops: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_ops: 24 }
    }
}

/// A generated program in genome form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recipe {
    /// The genes, emitted in order.
    pub ops: Vec<GenOp>,
}

impl Recipe {
    /// Draw a random recipe.
    pub fn random<R: Rng>(rng: &mut R, config: &GenConfig) -> Recipe {
        let n = rng.gen_range(1..=config.max_ops.max(1));
        let ops = (0..n).map(|_| random_op(rng)).collect();
        Recipe { ops }
    }

    /// Expand the genome into a verified module with entry `main` (no
    /// arguments).
    ///
    /// # Panics
    /// Panics if the emitted module fails verification — by construction
    /// that is a generator bug, and the property tests treat it as one.
    pub fn emit(&self) -> Module {
        let mut mb = ModuleBuilder::new("generated");
        let mut f = mb.function("main", vec![], None);
        // Fixed prelude: two register seeds and the heap buffers, with one
        // slot of each buffer initialised so loads see non-trivial data.
        let s0 = f.add(Type::I64, Value::i64(5), Value::i64(12));
        let s1 = f.mul(Type::I64, s0, Value::i64(3));
        let mut pool = vec![s0, s1];
        let size = Value::i64(8 * BUF_LEN as i64);
        let bufs: Vec<Value> = (0..N_BUFS)
            .map(|i| {
                let b = f.malloc(size);
                let slot = f.gep(b, Value::i64(i as i64), 8);
                f.store(Type::I64, Value::i64(41 + i as i64), slot);
                b
            })
            .collect();
        for op in &self.ops {
            let pick = |i: u16| pool[i as usize % pool.len()];
            match *op {
                GenOp::Const(c) => {
                    let v = f.or(Type::I64, Value::i64(c as i64), Value::i64(1));
                    pool.push(v);
                }
                GenOp::Bin { kind, a, b } => {
                    let (va, vb) = (pick(a), pick(b));
                    let v = match kind % 9 {
                        0 => f.add(Type::I64, va, vb),
                        1 => f.sub(Type::I64, va, vb),
                        2 => f.mul(Type::I64, va, vb),
                        3 => f.and(Type::I64, va, vb),
                        4 => f.or(Type::I64, va, vb),
                        5 => f.xor(Type::I64, va, vb),
                        6 => {
                            let amt = f.and(Type::I64, vb, Value::i64(7));
                            f.shl(Type::I64, va, amt)
                        }
                        7 => {
                            let amt = f.and(Type::I64, vb, Value::i64(7));
                            f.lshr(Type::I64, va, amt)
                        }
                        _ => {
                            let div = f.or(Type::I64, vb, Value::i64(1));
                            f.udiv(Type::I64, va, div)
                        }
                    };
                    pool.push(v);
                }
                GenOp::Cast { kind, v } => {
                    let narrow = f.trunc(Type::I64, Type::I32, pick(v));
                    let wide = if kind % 2 == 0 {
                        f.zext(Type::I32, Type::I64, narrow)
                    } else {
                        f.sext(Type::I32, Type::I64, narrow)
                    };
                    pool.push(wide);
                }
                GenOp::Load { buf, idx } => {
                    let w = f.urem(Type::I64, pick(idx), Value::i64(BUF_LEN as i64));
                    let addr = f.gep(bufs[buf as usize % N_BUFS], w, 8);
                    let v = f.load(Type::I64, addr);
                    pool.push(v);
                }
                GenOp::Store { buf, idx, val } => {
                    let w = f.urem(Type::I64, pick(idx), Value::i64(BUF_LEN as i64));
                    let addr = f.gep(bufs[buf as usize % N_BUFS], w, 8);
                    f.store(Type::I64, pick(val), addr);
                }
                GenOp::Diamond { cond, a, b } => {
                    let parity = f.and(Type::I64, pick(cond), Value::i64(1));
                    let c = f.icmp(IcmpPred::Eq, Type::I64, parity, Value::i64(1));
                    let (va, vb) = (pick(a), pick(b));
                    let tb = f.create_block("then");
                    let eb = f.create_block("else");
                    let join = f.create_block("join");
                    f.cond_br(c, tb, eb);
                    f.switch_to(tb);
                    let tv = f.add(Type::I64, va, Value::i64(5));
                    f.br(join);
                    f.switch_to(eb);
                    let ev = f.xor(Type::I64, vb, Value::i64(3));
                    f.br(join);
                    f.switch_to(join);
                    let merged = f.phi(Type::I64, vec![(tb, tv), (eb, ev)]);
                    pool.push(merged);
                }
                GenOp::Loop { buf, iters } => {
                    let n = i64::from(1 + iters % 4);
                    let base = bufs[buf as usize % N_BUFS];
                    let pre = f.current_block();
                    let header = f.create_block("head");
                    let body = f.create_block("body");
                    let exit = f.create_block("exit");
                    f.br(header);
                    f.switch_to(header);
                    let i = f.phi(Type::I64, vec![(pre, Value::i64(0))]);
                    let acc = f.phi(Type::I64, vec![(pre, Value::i64(0))]);
                    let c = f.icmp(IcmpPred::Slt, Type::I64, i, Value::i64(n));
                    f.cond_br(c, body, exit);
                    f.switch_to(body);
                    let w = f.urem(Type::I64, i, Value::i64(BUF_LEN as i64));
                    let addr = f.gep(base, w, 8);
                    let lv = f.load(Type::I64, addr);
                    let acc2 = f.add(Type::I64, acc, lv);
                    let i2 = f.add(Type::I64, i, Value::i64(1));
                    f.add_incoming(i, body, i2);
                    f.add_incoming(acc, body, acc2);
                    f.br(header);
                    f.switch_to(exit);
                    pool.push(acc);
                }
                GenOp::Output(v) => {
                    f.output(Type::I64, pick(v));
                }
            }
        }
        // Every program observes its last value, so the ACE analysis always
        // has at least one root.
        let last = *pool.last().expect("pool starts non-empty");
        f.output(Type::I64, last);
        f.ret(None);
        f.finish();
        mb.finish().expect("generated module verifies")
    }

    /// Shrink to a locally minimal failing recipe: repeatedly delete genes
    /// (and zero constants) while `fails` keeps returning `true`.
    pub fn shrink(&self, mut fails: impl FnMut(&Recipe) -> bool) -> Recipe {
        let mut cur = self.clone();
        loop {
            let mut improved = false;
            let mut i = cur.ops.len();
            while i > 0 {
                i -= 1;
                let mut cand = cur.clone();
                cand.ops.remove(i);
                if !cand.ops.is_empty() && fails(&cand) {
                    cur = cand;
                    improved = true;
                }
            }
            for i in 0..cur.ops.len() {
                if let GenOp::Const(c) = cur.ops[i] {
                    if c != 0 {
                        let mut cand = cur.clone();
                        cand.ops[i] = GenOp::Const(0);
                        if fails(&cand) {
                            cur = cand;
                            improved = true;
                        }
                    }
                }
            }
            if !improved {
                return cur;
            }
        }
    }
}

fn random_op<R: Rng>(rng: &mut R) -> GenOp {
    match rng.gen_range(0..100u32) {
        0..=9 => GenOp::Const(rng.gen_range(0..1u64 << 40)),
        10..=34 => GenOp::Bin {
            kind: rng.gen_range(0..9) as u8,
            a: rng.gen_range(0..256) as u16,
            b: rng.gen_range(0..256) as u16,
        },
        35..=42 => GenOp::Cast {
            kind: rng.gen_range(0..2) as u8,
            v: rng.gen_range(0..256) as u16,
        },
        43..=60 => GenOp::Load {
            buf: rng.gen_range(0..N_BUFS as u32) as u8,
            idx: rng.gen_range(0..256) as u16,
        },
        61..=76 => GenOp::Store {
            buf: rng.gen_range(0..N_BUFS as u32) as u8,
            idx: rng.gen_range(0..256) as u16,
            val: rng.gen_range(0..256) as u16,
        },
        77..=86 => GenOp::Diamond {
            cond: rng.gen_range(0..256) as u16,
            a: rng.gen_range(0..256) as u16,
            b: rng.gen_range(0..256) as u16,
        },
        87..=92 => GenOp::Loop {
            buf: rng.gen_range(0..N_BUFS as u32) as u8,
            iters: rng.gen_range(0..8) as u8,
        },
        _ => GenOp::Output(rng.gen_range(0..256) as u16),
    }
}

// ---- regression-corpus text form -------------------------------------
//
// One recipe per line, genes space-separated:
//   C:<v>  B:<k>:<a>:<b>  X:<k>:<v>  L:<buf>:<idx>  S:<buf>:<idx>:<val>
//   D:<c>:<a>:<b>  P:<buf>:<iters>  O:<v>
// The vendored proptest stub has no failure persistence, so the corpus
// format (and its replay) is owned here.

impl fmt::Display for GenOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GenOp::Const(v) => write!(f, "C:{v}"),
            GenOp::Bin { kind, a, b } => write!(f, "B:{kind}:{a}:{b}"),
            GenOp::Cast { kind, v } => write!(f, "X:{kind}:{v}"),
            GenOp::Load { buf, idx } => write!(f, "L:{buf}:{idx}"),
            GenOp::Store { buf, idx, val } => write!(f, "S:{buf}:{idx}:{val}"),
            GenOp::Diamond { cond, a, b } => write!(f, "D:{cond}:{a}:{b}"),
            GenOp::Loop { buf, iters } => write!(f, "P:{buf}:{iters}"),
            GenOp::Output(v) => write!(f, "O:{v}"),
        }
    }
}

impl fmt::Display for Recipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

impl FromStr for GenOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = s.split(':');
        let tag = p.next().ok_or_else(|| format!("empty gene in `{s}`"))?;
        let mut num = |what: &str| -> Result<u64, String> {
            p.next()
                .ok_or_else(|| format!("gene `{s}`: missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("gene `{s}`: bad {what}: {e}"))
        };
        let op = match tag {
            "C" => GenOp::Const(num("value")?),
            "B" => GenOp::Bin {
                kind: num("kind")? as u8,
                a: num("a")? as u16,
                b: num("b")? as u16,
            },
            "X" => GenOp::Cast {
                kind: num("kind")? as u8,
                v: num("v")? as u16,
            },
            "L" => GenOp::Load {
                buf: num("buf")? as u8,
                idx: num("idx")? as u16,
            },
            "S" => GenOp::Store {
                buf: num("buf")? as u8,
                idx: num("idx")? as u16,
                val: num("val")? as u16,
            },
            "D" => GenOp::Diamond {
                cond: num("cond")? as u16,
                a: num("a")? as u16,
                b: num("b")? as u16,
            },
            "P" => GenOp::Loop {
                buf: num("buf")? as u8,
                iters: num("iters")? as u8,
            },
            "O" => GenOp::Output(num("v")? as u16),
            other => return Err(format!("unknown gene tag `{other}`")),
        };
        Ok(op)
    }
}

impl FromStr for Recipe {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let ops = s
            .split_whitespace()
            .map(GenOp::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        if ops.is_empty() {
            return Err("empty recipe".into());
        }
        Ok(Recipe { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_interp::{ExecConfig, Interpreter, Outcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_random_recipe_emits_a_completing_program() {
        let mut rng = StdRng::seed_from_u64(0xE9F4);
        for _ in 0..60 {
            let r = Recipe::random(&mut rng, &GenConfig::default());
            let m = r.emit();
            let run = Interpreter::new(&m, ExecConfig::default())
                .run("main", &[])
                .expect("entry valid");
            assert_eq!(run.outcome, Outcome::Completed, "recipe `{r}`");
            assert!(!run.outputs.is_empty(), "always at least the final output");
        }
    }

    #[test]
    fn recipe_text_roundtrips() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let r = Recipe::random(&mut rng, &GenConfig::default());
            let text = r.to_string();
            let back: Recipe = text.parse().expect("parses");
            assert_eq!(back, r, "`{text}`");
        }
        assert!("Z:1".parse::<Recipe>().is_err());
        assert!("".parse::<Recipe>().is_err());
    }

    #[test]
    fn shrink_finds_a_minimal_failing_subset() {
        // Synthetic failure: "fails" iff the recipe still contains a Store
        // gene. The shrinker must reduce to exactly one gene.
        let mut rng = StdRng::seed_from_u64(5);
        let mut r = Recipe::random(&mut rng, &GenConfig { max_ops: 20 });
        r.ops.push(GenOp::Store {
            buf: 0,
            idx: 3,
            val: 4,
        });
        let fails = |c: &Recipe| c.ops.iter().any(|o| matches!(o, GenOp::Store { .. }));
        let min = r.shrink(fails);
        assert_eq!(min.ops.len(), 1, "shrunk to `{min}`");
        assert!(matches!(min.ops[0], GenOp::Store { .. }));
    }
}
