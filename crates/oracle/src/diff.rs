//! The differential checker: model claims vs exhaustive ground truth.
//!
//! Three claims are scored:
//!
//! 1. **Crash prediction** (crash model + propagation, Algs. 1–3): every
//!    flip the model marks as a crash bit should crash, every crash should
//!    be marked — measured as exact recall/precision over the full
//!    `(site, bit)` universe (the quantities the paper's Figs. 6–7
//!    estimate by sampling).
//! 2. **Masked/benign claims** (ACE analysis): an SDC observed when
//!    flipping an operand read of a *pure* instruction whose result lies
//!    outside the ACE graph contradicts the "un-ACE ⇒ cannot reach output"
//!    reading. These exist in reality (wild stores aliasing live data —
//!    the paper's §VI-B "other masking"), so they are reported and dumped,
//!    not asserted away.
//! 3. **Hard invariants** that must hold bit-for-bit regardless of model
//!    approximations — see [`hard_invariant_scan`].

use crate::ground_truth::{sweep, GroundTruth};
use epvf_core::{analyze, Constraint, EpvfConfig, EpvfResult, FaultModel};
use epvf_interp::{FaultEffect, InjectionSpec};
use epvf_ir::{Module, Op};
use epvf_llfi::{Campaign, CampaignConfig, InjOutcome};
use epvf_memsim::AlignmentPolicy;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Exact confusion matrix of crash prediction over the executed flips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Predicted crash, did crash.
    pub tp: u64,
    /// Predicted crash, did not crash.
    pub fp: u64,
    /// Not predicted, did crash.
    pub fn_: u64,
    /// Not predicted, did not crash.
    pub tn: u64,
}

impl Confusion {
    /// `TP / (TP + FN)`; 1.0 when nothing crashed.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// `TP / (TP + FP)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Total classified flips.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Pointwise sum, for pooling across programs.
    pub fn merge(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

/// How a single flip contradicted a model claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisagreementKind {
    /// The flip crashed but the model claimed it safe (false negative).
    MissedCrash,
    /// The model claimed a crash but the flip completed (false positive —
    /// control-flow masking or a flip landing in another mapped segment).
    PhantomCrash,
    /// An SDC from a flip whose consumer is a pure instruction outside the
    /// ACE graph — the "masked" claim failed (§VI-B other-masking).
    MaskedSdc,
}

impl DisagreementKind {
    /// Stable kebab-case label used in repro files.
    pub fn label(self) -> &'static str {
        match self {
            DisagreementKind::MissedCrash => "missed-crash",
            DisagreementKind::PhantomCrash => "phantom-crash",
            DisagreementKind::MaskedSdc => "masked-sdc",
        }
    }
}

/// One model-vs-ground-truth contradiction, with enough context to explain
/// and replay it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disagreement {
    /// The flip.
    pub spec: InjectionSpec,
    /// Which claim failed.
    pub kind: DisagreementKind,
    /// What actually happened.
    pub outcome: InjOutcome,
    /// The propagated constraint on that operand read, if the model had
    /// one (the inverted Table III range behind a crash prediction).
    pub constraint: Option<Constraint>,
}

/// Result of scoring one workload's models against its ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiffReport {
    /// Crash-prediction confusion matrix.
    pub confusion: Confusion,
    /// SDCs at masked (non-ACE pure) operand reads.
    pub masked_sdc: u64,
    /// Retained disagreements, most-interesting-first (capped).
    pub disagreements: Vec<Disagreement>,
    /// Total disagreements before capping.
    pub total_disagreements: u64,
}

/// A violated hard invariant: something no model approximation excuses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HardViolation {
    /// The flip that exposed it, where one exists.
    pub spec: Option<InjectionSpec>,
    /// What went wrong.
    pub detail: String,
}

/// Everything the oracle derives from one module.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// The executed sweep.
    pub ground_truth: GroundTruth,
    /// Model-vs-truth scoring.
    pub report: DiffReport,
    /// Violated hard invariants (must be empty for a correct stack).
    pub hard_violations: Vec<HardViolation>,
}

/// Score the crash model and the ACE masked claims against ground truth.
///
/// At most `max_repros` disagreements are retained with context
/// (missed crashes first — they are the rarer, more alarming class);
/// `total_disagreements` always counts all of them.
pub fn differential_check(
    campaign: &Campaign<'_>,
    res: &EpvfResult,
    gt: &GroundTruth,
    max_repros: usize,
) -> DiffReport {
    let trace = campaign.golden().trace.as_ref().expect("golden is traced");
    let pure = pure_op_index(campaign.module());
    let mut confusion = Confusion::default();
    let mut masked_sdc = 0u64;
    let mut disagreements: Vec<Disagreement> = Vec::new();
    let mut total = 0u64;
    for &(spec, outcome) in &gt.runs {
        let effect = lowered_effect(campaign, spec);
        let predicted = predicts_crash_effect(res, spec, effect);
        let crashed = outcome.is_crash();
        match (predicted, crashed) {
            (true, true) => confusion.tp += 1,
            (true, false) => confusion.fp += 1,
            (false, true) => confusion.fn_ += 1,
            (false, false) => confusion.tn += 1,
        }
        // The "masked ⇒ cannot corrupt output" claim is only about faults
        // in register reads; control and memory-cell faults propagate
        // through channels the ACE graph never claimed to model.
        let is_reg_fault = matches!(effect, FaultEffect::OperandXor { .. });
        let kind = if crashed && !predicted {
            Some(DisagreementKind::MissedCrash)
        } else if predicted && !crashed {
            Some(DisagreementKind::PhantomCrash)
        } else if outcome == InjOutcome::Sdc
            && is_reg_fault
            && is_masked_read(res, trace, &pure, spec)
        {
            masked_sdc += 1;
            Some(DisagreementKind::MaskedSdc)
        } else {
            None
        };
        if let Some(kind) = kind {
            total += 1;
            disagreements.push(Disagreement {
                spec,
                kind,
                outcome,
                constraint: res
                    .crash_map
                    .use_constraint(spec.dyn_idx, spec.operand_slot)
                    .copied(),
            });
        }
    }
    disagreements.sort_by_key(|d| match d.kind {
        DisagreementKind::MissedCrash => 0u8,
        DisagreementKind::MaskedSdc => 1,
        DisagreementKind::PhantomCrash => 2,
    });
    disagreements.truncate(max_repros);
    {
        use epvf_telemetry::{add, Ctr};
        add(Ctr::OracleTruePositives, confusion.tp);
        add(Ctr::OracleFalsePositives, confusion.fp);
        add(Ctr::OracleFalseNegatives, confusion.fn_);
        add(Ctr::OracleTrueNegatives, confusion.tn);
    }
    DiffReport {
        confusion,
        masked_sdc,
        disagreements,
        total_disagreements: total,
    }
}

/// Lower `spec` through the campaign's fault model to its machine effect.
fn lowered_effect(campaign: &Campaign<'_>, spec: InjectionSpec) -> FaultEffect {
    let width = campaign
        .sites()
        .width_of(spec.dyn_idx, spec.operand_slot)
        .unwrap_or(64);
    campaign.model().lower(spec, width).effect
}

/// The crash model's prediction for one lowered fault effect. Register
/// XORs score their mask against the operand-read constraint; address
/// XORs score against the address operand's constraint (addressing is
/// direct — the effect applies to the just-read effective address);
/// result, control, and memory-cell faults carry no crash-model claim, so
/// they predict `false` and can only cost precision, never recall.
fn predicts_crash_effect(res: &EpvfResult, spec: InjectionSpec, effect: FaultEffect) -> bool {
    match effect {
        FaultEffect::OperandXor { slot, mask } => {
            res.crash_map.predicts_crash_mask(spec.dyn_idx, slot, mask)
        }
        FaultEffect::AddrXor { mask } => {
            res.crash_map
                .predicts_crash_mask(spec.dyn_idx, spec.operand_slot, mask)
        }
        FaultEffect::ResultXor { .. }
        | FaultEffect::SkipInst
        | FaultEffect::FlipBranch
        | FaultEffect::EccFlip { .. } => false,
    }
}

/// Whether `spec` flips an operand read of a pure (side-effect-free)
/// instruction whose result node the ACE analysis excluded — i.e. a read
/// the analysis claims masked.
fn is_masked_read(
    res: &EpvfResult,
    trace: &epvf_interp::Trace,
    pure: &HashMap<usize, bool>,
    spec: InjectionSpec,
) -> bool {
    let Some(rec) = trace.get(spec.dyn_idx) else {
        return false;
    };
    if rec.mem.is_some() || !pure.get(&rec.sid.index()).copied().unwrap_or(false) {
        return false;
    }
    match res.ddg.def_of_record(rec.idx) {
        Some(node) => !res.ace.contains(node),
        None => false,
    }
}

/// `sid → is this instruction pure?` (no memory, control, call or output
/// side channel — the only ops whose un-ACE results provably cannot reach
/// the program output through modelled edges).
fn pure_op_index(module: &Module) -> HashMap<usize, bool> {
    let mut idx = HashMap::new();
    for f in &module.functions {
        for inst in f.insts() {
            let pure = matches!(
                inst.op,
                Op::Bin { .. }
                    | Op::FBin { .. }
                    | Op::FUn { .. }
                    | Op::Icmp { .. }
                    | Op::Fcmp { .. }
                    | Op::Cast { .. }
                    | Op::Select { .. }
                    | Op::Phi { .. }
                    | Op::Gep { .. }
            );
            idx.insert(inst.sid.index(), pure);
        }
    }
    idx
}

/// Bit-for-bit invariants that hold regardless of model approximations:
///
/// - **Exhaustiveness**: an unlimited sweep executed exactly one run per
///   `(site, bit)` pair.
/// - **Unmapped direct address ⇒ crash**: flipping the address operand of
///   a load/store to an address the recorded memory map provably faults
///   (no VMA, unreachable by stack expansion, or misaligned) must crash —
///   this checks the *interpreter + memory system*, independent of the
///   crash model.
/// - **Constraint sanity**: every propagated constraint contains the
///   golden-run value it was derived from (the Table III safety valve).
pub fn hard_invariant_scan(
    campaign: &Campaign<'_>,
    res: &EpvfResult,
    gt: &GroundTruth,
) -> Vec<HardViolation> {
    let trace = campaign.golden().trace.as_ref().expect("golden is traced");
    let mut violations = Vec::new();
    if gt.runs.len() as u64 > gt.universe {
        violations.push(HardViolation {
            spec: None,
            detail: format!(
                "sweep executed {} runs for a universe of {} (site,bit) pairs",
                gt.runs.len(),
                gt.universe
            ),
        });
    }
    for &(spec, outcome) in &gt.runs {
        let Some(rec) = trace.get(spec.dyn_idx) else {
            violations.push(HardViolation {
                spec: Some(spec),
                detail: "spec points outside the golden trace".into(),
            });
            continue;
        };
        let Some(mem) = rec.mem.as_ref() else {
            continue;
        };
        let addr_slot = usize::from(mem.is_store);
        // The invariant only constrains faults that corrupt the effective
        // address: a register XOR of the (directly used) address operand,
        // or an address-line XOR applied after the read.
        let flipped = match lowered_effect(campaign, spec) {
            FaultEffect::OperandXor { slot, mask } if slot == addr_slot => {
                let Some(op) = rec.operands.get(slot) else {
                    continue;
                };
                if op.bits != mem.addr {
                    continue; // address was adjusted after the read; not direct
                }
                op.bits ^ mask
            }
            FaultEffect::AddrXor { mask } => mem.addr ^ mask,
            _ => continue,
        };
        if mem
            .map
            .definitely_faults(flipped, mem.size, mem.sp, AlignmentPolicy::FourByte)
            && !outcome.is_crash()
        {
            violations.push(HardViolation {
                spec: Some(spec),
                detail: format!(
                    "address flip to {flipped:#x} provably faults ({} bytes, sp {:#x}) \
                     but the run ended {:?}",
                    mem.size, mem.sp, outcome
                ),
            });
        }
    }
    for (&(dyn_idx, slot), c) in res.crash_map.uses() {
        if !c.range.contains(c.value) {
            violations.push(HardViolation {
                spec: Some(InjectionSpec {
                    dyn_idx,
                    operand_slot: slot,
                    bit: 0,
                }),
                detail: format!(
                    "constraint range [{:#x}, {:#x}] does not contain its golden value {:#x}",
                    c.range.lo, c.range.hi, c.value
                ),
            });
        }
    }
    epvf_telemetry::add(
        epvf_telemetry::Ctr::OracleHardViolations,
        violations.len() as u64,
    );
    violations
}

/// Run the whole oracle on one module: golden run, ePVF analysis with the
/// paper's default configuration, exhaustive sweep, differential check,
/// hard-invariant scan.
///
/// # Panics
/// Panics if the module's golden run does not complete — for generated
/// programs that is a generator bug, for workloads a construction bug.
pub fn check_module(
    module: &Module,
    entry: &str,
    args: &[u64],
    max_repros: usize,
) -> OracleOutcome {
    check_module_with(module, entry, args, max_repros, EpvfConfig::default())
}

/// [`check_module`] with an explicit analysis configuration.
///
/// The generator-driven property tests score with
/// [`epvf_core::CrashScope::AllAccesses`]: random programs are dense in
/// stores that never feed an output, so the paper's ACE-only scoping would
/// measure its (known, documented) coverage gap instead of the models under
/// test.
///
/// # Panics
/// Panics if the module's golden run does not complete.
pub fn check_module_with(
    module: &Module,
    entry: &str,
    args: &[u64],
    max_repros: usize,
    config: EpvfConfig,
) -> OracleOutcome {
    check_module_model(
        module,
        entry,
        args,
        max_repros,
        config,
        epvf_core::default_fault_model(),
    )
}

/// [`check_module_with`] under an explicit [`FaultModel`]: the sweep
/// enumerates the model's injection-point universe, every point is lowered
/// through the model before execution, and the differential check scores
/// the crash map against the lowered effects (register and address XORs
/// carry predictions; control and memory-cell faults predict `false`).
///
/// # Panics
/// Panics if the module's golden run does not complete.
pub fn check_module_model(
    module: &Module,
    entry: &str,
    args: &[u64],
    max_repros: usize,
    config: EpvfConfig,
    model: Arc<dyn FaultModel>,
) -> OracleOutcome {
    let campaign = Campaign::with_model(module, entry, args, CampaignConfig::default(), model)
        .expect("golden run completes");
    let trace = campaign.golden().trace.as_ref().expect("golden is traced");
    let res = analyze(module, trace, config);
    let gt = sweep(&campaign, 0);
    let report = differential_check(&campaign, &res, &gt, max_repros);
    let hard_violations = hard_invariant_scan(&campaign, &res, &gt);
    OracleOutcome {
        ground_truth: gt,
        report,
        hard_violations,
    }
}
