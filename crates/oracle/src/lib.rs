//! # epvf-oracle — exhaustive ground truth for the ePVF models
//!
//! The paper validates its crash prediction *statistically* (sampled fault
//! injection, Figs. 6–7). This crate builds the stronger artifact those
//! samples estimate: the **exhaustive bit-flip oracle** — every
//! `(dynamic instruction, operand, bit)` injection site of a workload is
//! executed to a concrete outcome through the checkpoint-resume replay
//! engine, producing a [`GroundTruth`] table. A differential checker then
//! scores the crash model's predicted crash-bit sets and the ACE analysis's
//! masked/benign claims against that table, computing exact recall and
//! precision (Table V format) and dumping a replayable minimized repro for
//! every disagreement.
//!
//! The second half is a **property-based IR program generator**: seeded
//! recipes expand into small well-typed modules (arithmetic chains, wrapped
//! load/store addressing, branch diamonds, bounded loops, GEP address
//! computation) whose golden runs complete by construction, so the
//! differential check can sweep thousands of programs nobody hand-wrote,
//! with automatic shrinking to the smallest failing recipe.
//!
//! ```
//! use epvf_oracle::{check_module, GenConfig, Recipe};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let recipe = Recipe::random(&mut rng, &GenConfig::default());
//! let module = recipe.emit();
//! let oracle = check_module(&module, "main", &[], 4);
//! assert!(oracle.hard_violations.is_empty());
//! assert!(oracle.ground_truth.is_exhaustive());
//! ```

#![warn(missing_docs)]

mod calibrate;
mod diff;
mod generator;
mod ground_truth;
mod repro;

pub use calibrate::{calibrate, Calibration};
pub use diff::{
    check_module, check_module_model, check_module_with, differential_check, hard_invariant_scan,
    Confusion, DiffReport, Disagreement, DisagreementKind, HardViolation, OracleOutcome,
};
pub use generator::{GenConfig, GenOp, Recipe, BUF_LEN, N_BUFS};
pub use ground_truth::{outcome_label, sweep, GroundTruth};
pub use repro::{parse_repro, render_repro, replay_repro, write_repros, Repro, ReproContext};
