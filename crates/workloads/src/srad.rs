//! Speckle Reducing Anisotropic Diffusion (`srad`) — Rodinia's image
//! despeckling kernel (Table IV: 288 LOC, Image Processing).
//!
//! Per iteration: compute the speckle statistics (`q0²`) over the ROI
//! sub-window (the top-left quadrant, as Rodinia's `r1 r2 c1 c2` arguments
//! select a sub-rectangle), per-cell directional derivatives and diffusion
//! coefficient `c`, then apply the divergence update `J += λ/4 · D`. The
//! final image is output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{FcmpPred, FunctionBuilder, IcmpPred, ModuleBuilder, Type, Value};

const LAMBDA: f64 = 0.5;

/// Build `srad` at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (dim, iters) = scale.pick((6, 1), (8, 2), (10, 4));
    build_grid(dim, iters)
}

fn make_image(dim: i32) -> Vec<f64> {
    let mut input = InputStream::new(0x5AD);
    input.f64s((dim * dim) as usize, 0.0, 1.0)
}

fn clamp_idx(f: &mut FunctionBuilder<'_>, x: Value, lo: i32, hi: i32) -> Value {
    let too_low = f.icmp(IcmpPred::Slt, Type::I32, x, Value::i32(lo));
    let cl = f.select(Type::I32, too_low, Value::i32(lo), x);
    let too_high = f.icmp(IcmpPred::Sgt, Type::I32, cl, Value::i32(hi));
    f.select(Type::I32, too_high, Value::i32(hi), cl)
}

/// Build `srad` for an explicit grid and iteration count.
pub fn build_grid(dim: i32, iters: i32) -> Workload {
    let image = make_image(dim);

    let mut mb = ModuleBuilder::new("srad");
    let gimg = mb.global_f64s("image", &image);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pimg = f.gep(Value::Global(gimg), Value::i32(0), 1);
    let nd = Value::i32(dim);
    let cells = Value::i32(dim * dim);
    let fsize = 8 * i64::from(dim) * i64::from(dim);

    let j = f.malloc(Value::i64(fsize));
    let dn = f.malloc(Value::i64(fsize));
    let ds = f.malloc(Value::i64(fsize));
    let dw = f.malloc(Value::i64(fsize));
    let de = f.malloc(Value::i64(fsize));
    let cbuf = f.malloc(Value::i64(fsize));

    // J = exp(image)
    for_simple(&mut f, 0, cells, |f, i| {
        let s = f.gep(pimg, i, 8);
        let v = f.load(Type::F64, s);
        let e = f.exp(Type::F64, v);
        let d = f.gep(j, i, 8);
        f.store(Type::F64, e, d);
    });

    // ROI: the top-left quadrant (Rodinia's r1/r2/c1/c2 sub-rectangle).
    let roi = (dim / 2).max(1);
    for_simple(&mut f, 0, Value::i32(iters), |f, _it| {
        // Speckle statistics over the ROI.
        let sums = for_range(
            f,
            Value::i32(0),
            Value::i32(roi),
            &[(Type::F64, Value::f64(0.0)), (Type::F64, Value::f64(0.0))],
            |f, r, acc| {
                let inner = for_range(
                    f,
                    Value::i32(0),
                    Value::i32(roi),
                    &[(Type::F64, acc[0]), (Type::F64, acc[1])],
                    |f, c, acc2| {
                        let rb = f.mul(Type::I32, r, nd);
                        let i = f.add(Type::I32, rb, c);
                        let s = f.gep(j, i, 8);
                        let v = f.load(Type::F64, s);
                        let sum = f.fadd(Type::F64, acc2[0], v);
                        let v2 = f.fmul(Type::F64, v, v);
                        let sum2 = f.fadd(Type::F64, acc2[1], v2);
                        vec![sum, sum2]
                    },
                );
                vec![inner[0], inner[1]]
            },
        );
        let count = Value::f64(f64::from(roi * roi));
        let mean = f.fdiv(Type::F64, sums[0], count);
        let ms = f.fdiv(Type::F64, sums[1], count);
        let mean2 = f.fmul(Type::F64, mean, mean);
        let var = f.fsub(Type::F64, ms, mean2);
        let q0sqr = f.fdiv(Type::F64, var, mean2);

        // Pass 1: derivatives and diffusion coefficient.
        for_simple(f, 0, nd, |f, r| {
            for_simple(f, 0, nd, |f, c| {
                let rb = f.mul(Type::I32, r, nd);
                let idx = f.add(Type::I32, rb, c);
                let at = |f: &mut FunctionBuilder<'_>, row: Value, col: Value| {
                    let rb = f.mul(Type::I32, row, nd);
                    let i = f.add(Type::I32, rb, col);
                    let s = f.gep(j, i, 8);
                    f.load(Type::F64, s)
                };
                let jc = at(f, r, c);
                let rm = f.sub(Type::I32, r, Value::i32(1));
                let rn = clamp_idx(f, rm, 0, dim - 1);
                let rp = f.add(Type::I32, r, Value::i32(1));
                let rs = clamp_idx(f, rp, 0, dim - 1);
                let cm = f.sub(Type::I32, c, Value::i32(1));
                let cw = clamp_idx(f, cm, 0, dim - 1);
                let cp = f.add(Type::I32, c, Value::i32(1));
                let ce = clamp_idx(f, cp, 0, dim - 1);

                let jn = at(f, rn, c);
                let js = at(f, rs, c);
                let jw = at(f, r, cw);
                let je = at(f, r, ce);
                let vdn = f.fsub(Type::F64, jn, jc);
                let vds = f.fsub(Type::F64, js, jc);
                let vdw = f.fsub(Type::F64, jw, jc);
                let vde = f.fsub(Type::F64, je, jc);

                // G² = (dN²+dS²+dW²+dE²)/Jc² ;  L = (dN+dS+dW+dE)/Jc
                let sq = |f: &mut FunctionBuilder<'_>, v: Value| f.fmul(Type::F64, v, v);
                let n2 = sq(f, vdn);
                let s2 = sq(f, vds);
                let w2 = sq(f, vdw);
                let e2 = sq(f, vde);
                let g_a = f.fadd(Type::F64, n2, s2);
                let g_b = f.fadd(Type::F64, g_a, w2);
                let g_c = f.fadd(Type::F64, g_b, e2);
                let jc2 = f.fmul(Type::F64, jc, jc);
                let g2 = f.fdiv(Type::F64, g_c, jc2);
                let l_a = f.fadd(Type::F64, vdn, vds);
                let l_b = f.fadd(Type::F64, l_a, vdw);
                let l_c = f.fadd(Type::F64, l_b, vde);
                let l = f.fdiv(Type::F64, l_c, jc);

                // num = G²/2 − L²/16 ; den = (1 + L/4)² ; qsqr = num/den
                let half_g2 = f.fmul(Type::F64, g2, Value::f64(0.5));
                let l2 = f.fmul(Type::F64, l, l);
                let l2_16 = f.fmul(Type::F64, l2, Value::f64(1.0 / 16.0));
                let num = f.fsub(Type::F64, half_g2, l2_16);
                let l4 = f.fmul(Type::F64, l, Value::f64(0.25));
                let dpl = f.fadd(Type::F64, Value::f64(1.0), l4);
                let den = f.fmul(Type::F64, dpl, dpl);
                let qsqr = f.fdiv(Type::F64, num, den);

                // c = 1 / (1 + (q² − q0²)/(q0²(1 + q0²))), clamped to [0,1]
                let dq = f.fsub(Type::F64, qsqr, q0sqr);
                let q0p1 = f.fadd(Type::F64, Value::f64(1.0), q0sqr);
                let denom = f.fmul(Type::F64, q0sqr, q0p1);
                let t = f.fdiv(Type::F64, dq, denom);
                let onept = f.fadd(Type::F64, Value::f64(1.0), t);
                let cval = f.fdiv(Type::F64, Value::f64(1.0), onept);
                let lo = f.fcmp(FcmpPred::Olt, Type::F64, cval, Value::f64(0.0));
                let cl = f.select(Type::F64, lo, Value::f64(0.0), cval);
                let hi = f.fcmp(FcmpPred::Ogt, Type::F64, cl, Value::f64(1.0));
                let cc = f.select(Type::F64, hi, Value::f64(1.0), cl);

                let store_at = |f: &mut FunctionBuilder<'_>, buf: Value, v: Value| {
                    let s = f.gep(buf, idx, 8);
                    f.store(Type::F64, v, s);
                };
                store_at(f, dn, vdn);
                store_at(f, ds, vds);
                store_at(f, dw, vdw);
                store_at(f, de, vde);
                store_at(f, cbuf, cc);
            });
        });

        // Pass 2: divergence update.
        for_simple(f, 0, nd, |f, r| {
            for_simple(f, 0, nd, |f, c| {
                let rb = f.mul(Type::I32, r, nd);
                let idx = f.add(Type::I32, rb, c);
                let rp = f.add(Type::I32, r, Value::i32(1));
                let rs = clamp_idx(f, rp, 0, dim - 1);
                let cp = f.add(Type::I32, c, Value::i32(1));
                let ce = clamp_idx(f, cp, 0, dim - 1);

                let load_at = |f: &mut FunctionBuilder<'_>, buf: Value, i: Value| {
                    let s = f.gep(buf, i, 8);
                    f.load(Type::F64, s)
                };
                let cn = load_at(f, cbuf, idx);
                let rsb = f.mul(Type::I32, rs, nd);
                let sidx = f.add(Type::I32, rsb, c);
                let cs = load_at(f, cbuf, sidx);
                let cw = cn;
                let eidx = f.add(Type::I32, rb, ce);
                let ceast = load_at(f, cbuf, eidx);

                let vdn = load_at(f, dn, idx);
                let vds = load_at(f, ds, idx);
                let vdw = load_at(f, dw, idx);
                let vde = load_at(f, de, idx);

                let t1 = f.fmul(Type::F64, cn, vdn);
                let t2 = f.fmul(Type::F64, cs, vds);
                let t3 = f.fmul(Type::F64, cw, vdw);
                let t4 = f.fmul(Type::F64, ceast, vde);
                let d_a = f.fadd(Type::F64, t1, t2);
                let d_b = f.fadd(Type::F64, d_a, t3);
                let dsum = f.fadd(Type::F64, d_b, t4);

                let jslot = f.gep(j, idx, 8);
                let jv = f.load(Type::F64, jslot);
                let upd = f.fmul(Type::F64, dsum, Value::f64(0.25 * LAMBDA));
                let newj = f.fadd(Type::F64, jv, upd);
                f.store(Type::F64, newj, jslot);
            });
        });
    });

    for_simple(&mut f, 0, cells, |f, i| {
        let s = f.gep(j, i, 8);
        let v = f.load(Type::F64, s);
        f.output(Type::F64, v);
    });
    f.ret(None);
    f.finish();

    Workload {
        name: "srad",
        domain: "Image Processing",
        paper_loc: 288,
        module: mb.finish().expect("srad verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(dim: i32, iters: i32) -> Vec<f64> {
    let image = make_image(dim);
    let n = dim as usize;
    let mut j: Vec<f64> = image.iter().map(|v| v.exp()).collect();
    let clamp = |x: i32| x.clamp(0, dim - 1) as usize;
    let mut dn = vec![0.0; n * n];
    let mut ds = vec![0.0; n * n];
    let mut dw = vec![0.0; n * n];
    let mut de = vec![0.0; n * n];
    let mut cb = vec![0.0; n * n];
    let roi = (dim / 2).max(1) as usize;
    for _ in 0..iters {
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for r in 0..roi {
            for c in 0..roi {
                let v = j[r * n + c];
                sum += v;
                sum2 += v * v;
            }
        }
        let count = f64::from((roi * roi) as i32);
        let mean = sum / count;
        let var = sum2 / count - mean * mean;
        let q0sqr = var / (mean * mean);
        for r in 0..n {
            for c in 0..n {
                let idx = r * n + c;
                let jc = j[idx];
                let jn = j[clamp(r as i32 - 1) * n + c];
                let js = j[clamp(r as i32 + 1) * n + c];
                let jw = j[r * n + clamp(c as i32 - 1)];
                let je = j[r * n + clamp(c as i32 + 1)];
                let (vdn, vds, vdw, vde) = (jn - jc, js - jc, jw - jc, je - jc);
                let g2 = (((vdn * vdn + vds * vds) + vdw * vdw) + vde * vde) / (jc * jc);
                let l = ((vdn + vds) + vdw + vde) / jc;
                let num = g2 * 0.5 - (l * l) * (1.0 / 16.0);
                let dpl = 1.0 + l * 0.25;
                let qsqr = num / (dpl * dpl);
                let t = (qsqr - q0sqr) / (q0sqr * (1.0 + q0sqr));
                let cval = 1.0 / (1.0 + t);
                let cc = cval.clamp(0.0, 1.0);
                dn[idx] = vdn;
                ds[idx] = vds;
                dw[idx] = vdw;
                de[idx] = vde;
                cb[idx] = cc;
            }
        }
        for r in 0..n {
            for c in 0..n {
                let idx = r * n + c;
                let cn = cb[idx];
                let cs = cb[clamp(r as i32 + 1) * n + c];
                let cw = cn;
                let ce = cb[r * n + clamp(c as i32 + 1)];
                let dsum = ((cn * dn[idx] + cs * ds[idx]) + cw * dw[idx]) + ce * de[idx];
                j[idx] += dsum * (0.25 * LAMBDA);
            }
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got = w.run().outputs;
        let expected: Vec<u64> = reference(6, 1).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn diffusion_smooths_variance() {
        let before = make_image(8).iter().map(|v| v.exp()).collect::<Vec<_>>();
        let after = reference(8, 4);
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&after) < var(&before), "diffusion must reduce variance");
    }
}
