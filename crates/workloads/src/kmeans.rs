//! K-Means clustering (`kmeans`) — Rodinia's clustering kernel. It appears
//! in the paper's Table II (crash-class frequencies) though not in its
//! Table IV; it is provided here as an eleventh workload so Table II can be
//! reproduced in full (`extended_suite`).
//!
//! Lloyd iterations over 2-D points: assign each point to the nearest
//! centroid, then recompute centroids as cluster means. Final centroids and
//! assignments are output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{FcmpPred, IcmpPred, ModuleBuilder, Type, Value};

const K: i32 = 3;

/// Build `kmeans` at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (points, iters) = scale.pick((24, 2), (48, 3), (96, 5));
    build_km(points, iters)
}

fn make_points(n: i32) -> (Vec<f64>, Vec<f64>) {
    let mut input = InputStream::new(0x4EA5);
    // Three loose clusters around (0,0), (10,10), (20,0).
    let centers = [(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)];
    let mut xs = Vec::with_capacity(n as usize);
    let mut ys = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let (cx, cy) = centers[i % 3];
        xs.push(cx + input.next_f64() * 4.0 - 2.0);
        ys.push(cy + input.next_f64() * 4.0 - 2.0);
    }
    (xs, ys)
}

/// Build `kmeans` for explicit point/iteration counts.
pub fn build_km(points: i32, iters: i32) -> Workload {
    let (xs, ys) = make_points(points);

    let mut mb = ModuleBuilder::new("kmeans");
    let gx = mb.global_f64s("xs", &xs);
    let gy = mb.global_f64s("ys", &ys);
    let mut f = mb.function("main", vec![], None);
    let px = f.gep(Value::Global(gx), Value::i32(0), 1);
    let py = f.gep(Value::Global(gy), Value::i32(0), 1);
    let nn = Value::i32(points);
    let kk = Value::i32(K);

    let cx = f.malloc(Value::i64(8 * i64::from(K)));
    let cy = f.malloc(Value::i64(8 * i64::from(K)));
    let sums_x = f.malloc(Value::i64(8 * i64::from(K)));
    let sums_y = f.malloc(Value::i64(8 * i64::from(K)));
    let counts = f.malloc(Value::i64(4 * i64::from(K)));
    let assign = f.malloc(Value::i64(4 * i64::from(points)));

    // Initialize centroids to the first K points.
    for_simple(&mut f, 0, kk, |f, c| {
        let sx = f.gep(px, c, 8);
        let vx = f.load(Type::F64, sx);
        let dx = f.gep(cx, c, 8);
        f.store(Type::F64, vx, dx);
        let sy = f.gep(py, c, 8);
        let vy = f.load(Type::F64, sy);
        let dy = f.gep(cy, c, 8);
        f.store(Type::F64, vy, dy);
    });

    for_simple(&mut f, 0, Value::i32(iters), |f, _it| {
        // Reset accumulators.
        for_simple(f, 0, kk, |f, c| {
            let sx = f.gep(sums_x, c, 8);
            f.store(Type::F64, Value::f64(0.0), sx);
            let sy = f.gep(sums_y, c, 8);
            f.store(Type::F64, Value::f64(0.0), sy);
            let ct = f.gep(counts, c, 4);
            f.store(Type::I32, Value::i32(0), ct);
        });
        // Assignment step.
        for_simple(f, 0, nn, |f, p| {
            let sx = f.gep(px, p, 8);
            let x = f.load(Type::F64, sx);
            let sy = f.gep(py, p, 8);
            let y = f.load(Type::F64, sy);
            let best = for_range(
                f,
                Value::i32(0),
                kk,
                &[
                    (Type::F64, Value::f64(f64::MAX)), // best distance²
                    (Type::I32, Value::i32(0)),        // best cluster
                ],
                |f, c, acc| {
                    let cxs = f.gep(cx, c, 8);
                    let cvx = f.load(Type::F64, cxs);
                    let cys = f.gep(cy, c, 8);
                    let cvy = f.load(Type::F64, cys);
                    let dx = f.fsub(Type::F64, x, cvx);
                    let dy = f.fsub(Type::F64, y, cvy);
                    let dx2 = f.fmul(Type::F64, dx, dx);
                    let dy2 = f.fmul(Type::F64, dy, dy);
                    let d2 = f.fadd(Type::F64, dx2, dy2);
                    let closer = f.fcmp(FcmpPred::Olt, Type::F64, d2, acc[0]);
                    let nd = f.select(Type::F64, closer, d2, acc[0]);
                    let nc = f.select(Type::I32, closer, c, acc[1]);
                    vec![nd, nc]
                },
            );
            let aslot = f.gep(assign, p, 4);
            f.store(Type::I32, best[1], aslot);
            let sxs = f.gep(sums_x, best[1], 8);
            let sxv = f.load(Type::F64, sxs);
            let sx2 = f.fadd(Type::F64, sxv, x);
            f.store(Type::F64, sx2, sxs);
            let sys = f.gep(sums_y, best[1], 8);
            let syv = f.load(Type::F64, sys);
            let sy2 = f.fadd(Type::F64, syv, y);
            f.store(Type::F64, sy2, sys);
            let cts = f.gep(counts, best[1], 4);
            let ctv = f.load(Type::I32, cts);
            let ct2 = f.add(Type::I32, ctv, Value::i32(1));
            f.store(Type::I32, ct2, cts);
        });
        // Update step (guard empty clusters).
        for_simple(f, 0, kk, |f, c| {
            let cts = f.gep(counts, c, 4);
            let ct = f.load(Type::I32, cts);
            let nonempty = f.icmp(IcmpPred::Sgt, Type::I32, ct, Value::i32(0));
            let upd = f.create_block("update");
            let skip = f.create_block("skip");
            f.cond_br(nonempty, upd, skip);
            f.switch_to(upd);
            let ctf = f.sitofp(Type::I32, Type::F64, ct);
            let sxs = f.gep(sums_x, c, 8);
            let sxv = f.load(Type::F64, sxs);
            let mx = f.fdiv(Type::F64, sxv, ctf);
            let cxs = f.gep(cx, c, 8);
            f.store(Type::F64, mx, cxs);
            let sys = f.gep(sums_y, c, 8);
            let syv = f.load(Type::F64, sys);
            let my = f.fdiv(Type::F64, syv, ctf);
            let cys = f.gep(cy, c, 8);
            f.store(Type::F64, my, cys);
            f.br(skip);
            f.switch_to(skip);
        });
    });

    for_simple(&mut f, 0, kk, |f, c| {
        let cxs = f.gep(cx, c, 8);
        let vx = f.load(Type::F64, cxs);
        f.output(Type::F64, vx);
        let cys = f.gep(cy, c, 8);
        let vy = f.load(Type::F64, cys);
        f.output(Type::F64, vy);
    });
    for_simple(&mut f, 0, nn, |f, p| {
        let aslot = f.gep(assign, p, 4);
        let a = f.load(Type::I32, aslot);
        f.output(Type::I32, a);
    });
    f.ret(None);
    f.finish();

    Workload {
        name: "kmeans",
        domain: "Data Mining",
        paper_loc: 0, // not in the paper's Table IV
        module: mb.finish().expect("kmeans verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(points: i32, iters: i32) -> (Vec<f64>, Vec<i32>) {
    let (xs, ys) = make_points(points);
    let n = points as usize;
    let k = K as usize;
    let mut cx: Vec<f64> = xs[..k].to_vec();
    let mut cy: Vec<f64> = ys[..k].to_vec();
    let mut assign = vec![0i32; n];
    for _ in 0..iters {
        let mut sx = vec![0.0f64; k];
        let mut sy = vec![0.0f64; k];
        let mut ct = vec![0i32; k];
        for p in 0..n {
            let mut bd = f64::MAX;
            let mut bc = 0i32;
            for c in 0..k {
                let dx = xs[p] - cx[c];
                let dy = ys[p] - cy[c];
                let d2 = dx * dx + dy * dy;
                if d2 < bd {
                    bd = d2;
                    bc = c as i32;
                }
            }
            assign[p] = bc;
            sx[bc as usize] += xs[p];
            sy[bc as usize] += ys[p];
            ct[bc as usize] += 1;
        }
        for c in 0..k {
            if ct[c] > 0 {
                cx[c] = sx[c] / f64::from(ct[c]);
                cy[c] = sy[c] / f64::from(ct[c]);
            }
        }
    }
    let mut centroids = Vec::with_capacity(2 * k);
    for c in 0..k {
        centroids.push(cx[c]);
        centroids.push(cy[c]);
    }
    (centroids, assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got = w.run().outputs;
        let (centroids, assign) = reference(24, 2);
        let mut expected: Vec<u64> = centroids.iter().map(|v| v.to_bits()).collect();
        expected.extend(assign.iter().map(|a| *a as u32 as u64));
        assert_eq!(got, expected);
    }

    #[test]
    fn clusters_separate_the_three_blobs() {
        let (_, assign) = reference(48, 3);
        // Points were generated round-robin over three blobs; after a few
        // iterations, same-blob points must share a cluster id.
        for blob in 0..3usize {
            let ids: Vec<i32> = assign.iter().skip(blob).step_by(3).copied().collect();
            assert!(
                ids.iter().all(|i| *i == ids[0]),
                "blob {blob} split across clusters: {ids:?}"
            );
        }
    }
}
