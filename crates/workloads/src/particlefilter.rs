//! Particle Filter (`particlefilter`) — Rodinia's sequential Monte-Carlo
//! tracker (Table IV: 602 LOC, Medical Imaging).
//!
//! Per video frame: propagate particles with precomputed noise, weight by a
//! Gaussian likelihood of the observed object position, normalize, output
//! the state estimate, and systematically resample. Estimates are output
//! per frame.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{FcmpPred, ModuleBuilder, Type, Value};

const SIGMA2: f64 = 2.0;

/// Build `particlefilter` at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (particles, frames) = scale.pick((8, 2), (16, 3), (32, 4));
    build_pf(particles, frames)
}

fn make_noise(particles: i32, frames: i32) -> (Vec<f64>, Vec<f64>) {
    let mut input = InputStream::new(0xF117E2);
    let nx = input.f64s((particles * frames) as usize, -1.0, 1.0);
    let ny = input.f64s((particles * frames) as usize, -1.0, 1.0);
    (nx, ny)
}

fn obj_pos(frame: f64) -> (f64, f64) {
    (10.0 + frame, 20.0 - 2.0 * frame)
}

/// Build `particlefilter` for explicit particle/frame counts.
pub fn build_pf(particles: i32, frames: i32) -> Workload {
    let (noise_x, noise_y) = make_noise(particles, frames);
    let n = particles;

    let mut mb = ModuleBuilder::new("particlefilter");
    let gnx = mb.global_f64s("noise_x", &noise_x);
    let gny = mb.global_f64s("noise_y", &noise_y);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pnx = f.gep(Value::Global(gnx), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pny = f.gep(Value::Global(gny), Value::i32(0), 1);
    let nn = Value::i32(n);
    let fbytes = Value::i64(8 * i64::from(n));

    let x = f.malloc(fbytes);
    let y = f.malloc(fbytes);
    let w = f.malloc(fbytes);
    let cdf = f.malloc(fbytes);
    let xn = f.malloc(fbytes);
    let yn = f.malloc(fbytes);
    let inv_n = Value::f64(1.0 / f64::from(n));

    for_simple(&mut f, 0, nn, |f, p| {
        let xs = f.gep(x, p, 8);
        f.store(Type::F64, Value::f64(10.0), xs);
        let ys = f.gep(y, p, 8);
        f.store(Type::F64, Value::f64(20.0), ys);
        let ws = f.gep(w, p, 8);
        f.store(Type::F64, inv_n, ws);
    });

    for_simple(&mut f, 1, Value::i32(frames + 1), |f, frame| {
        let framef = f.sitofp(Type::I32, Type::F64, frame);
        let ox = f.fadd(Type::F64, Value::f64(10.0), framef);
        let two_f = f.fmul(Type::F64, Value::f64(2.0), framef);
        let oy = f.fsub(Type::F64, Value::f64(20.0), two_f);
        let fm1 = f.sub(Type::I32, frame, Value::i32(1));
        let nbase = f.mul(Type::I32, fm1, nn);

        // Propagate + weight.
        let wsum = for_range(
            f,
            Value::i32(0),
            nn,
            &[(Type::F64, Value::f64(0.0))],
            |f, p, acc| {
                let ni = f.add(Type::I32, nbase, p);
                let nxs = f.gep(pnx, ni, 8);
                let nx = f.load(Type::F64, nxs);
                let nys = f.gep(pny, ni, 8);
                let ny = f.load(Type::F64, nys);
                let xs = f.gep(x, p, 8);
                let xv = f.load(Type::F64, xs);
                let x1 = f.fadd(Type::F64, xv, Value::f64(1.0));
                let x2 = f.fadd(Type::F64, x1, nx);
                f.store(Type::F64, x2, xs);
                let ys = f.gep(y, p, 8);
                let yv = f.load(Type::F64, ys);
                let y1 = f.fsub(Type::F64, yv, Value::f64(2.0));
                let y2 = f.fadd(Type::F64, y1, ny);
                f.store(Type::F64, y2, ys);

                let dx = f.fsub(Type::F64, x2, ox);
                let dy = f.fsub(Type::F64, y2, oy);
                let dx2 = f.fmul(Type::F64, dx, dx);
                let dy2 = f.fmul(Type::F64, dy, dy);
                let d2 = f.fadd(Type::F64, dx2, dy2);
                let scaled = f.fdiv(Type::F64, d2, Value::f64(2.0 * SIGMA2));
                let neg = f.fneg(Type::F64, scaled);
                let lik = f.exp(Type::F64, neg);
                let ws = f.gep(w, p, 8);
                let wv = f.load(Type::F64, ws);
                let w2 = f.fmul(Type::F64, wv, lik);
                f.store(Type::F64, w2, ws);
                vec![f.fadd(Type::F64, acc[0], w2)]
            },
        );

        // Normalize, estimate, and build the CDF.
        let est = for_range(
            f,
            Value::i32(0),
            nn,
            &[
                (Type::F64, Value::f64(0.0)), // xe
                (Type::F64, Value::f64(0.0)), // ye
                (Type::F64, Value::f64(0.0)), // running cdf
            ],
            |f, p, acc| {
                let ws = f.gep(w, p, 8);
                let wv = f.load(Type::F64, ws);
                let norm = f.fdiv(Type::F64, wv, wsum[0]);
                f.store(Type::F64, norm, ws);
                let xs = f.gep(x, p, 8);
                let xv = f.load(Type::F64, xs);
                let ys = f.gep(y, p, 8);
                let yv = f.load(Type::F64, ys);
                let wx = f.fmul(Type::F64, norm, xv);
                let xe = f.fadd(Type::F64, acc[0], wx);
                let wy = f.fmul(Type::F64, norm, yv);
                let ye = f.fadd(Type::F64, acc[1], wy);
                let run = f.fadd(Type::F64, acc[2], norm);
                let cs = f.gep(cdf, p, 8);
                f.store(Type::F64, run, cs);
                vec![xe, ye, run]
            },
        );
        f.output(Type::F64, est[0]);
        f.output(Type::F64, est[1]);

        // Systematic resampling with u0 = 1/(2N).
        for_simple(f, 0, nn, |f, p| {
            let pf = f.sitofp(Type::I32, Type::F64, p);
            let pn = f.fmul(Type::F64, pf, inv_n);
            let u = f.fadd(Type::F64, Value::f64(0.5 / f64::from(n)), pn);
            // Linear scan for the first cdf[k] ≥ u (select-based, no branch).
            let found = for_range(
                f,
                Value::i32(0),
                nn,
                &[(Type::I32, Value::i32(0)), (Type::I1, Value::bool(false))],
                |f, k, acc| {
                    let cs = f.gep(cdf, k, 8);
                    let cv = f.load(Type::F64, cs);
                    let ge = f.fcmp(FcmpPred::Oge, Type::F64, cv, u);
                    let not_found = f.xor(Type::I1, acc[1], Value::bool(true));
                    let take = f.and(Type::I1, ge, not_found);
                    let idx = f.select(Type::I32, take, k, acc[0]);
                    let nf = f.or(Type::I1, acc[1], ge);
                    vec![idx, nf]
                },
            );
            // Degenerate tail (u beyond cdf[n−1] due to rounding): keep last.
            let last = Value::i32(n - 1);
            let idx = f.select(Type::I32, found[1], found[0], last);
            let sx = f.gep(x, idx, 8);
            let vx = f.load(Type::F64, sx);
            let dx = f.gep(xn, p, 8);
            f.store(Type::F64, vx, dx);
            let sy = f.gep(y, idx, 8);
            let vy = f.load(Type::F64, sy);
            let dy = f.gep(yn, p, 8);
            f.store(Type::F64, vy, dy);
        });
        for_simple(f, 0, nn, |f, p| {
            let sx = f.gep(xn, p, 8);
            let vx = f.load(Type::F64, sx);
            let dx = f.gep(x, p, 8);
            f.store(Type::F64, vx, dx);
            let sy = f.gep(yn, p, 8);
            let vy = f.load(Type::F64, sy);
            let dy = f.gep(y, p, 8);
            f.store(Type::F64, vy, dy);
            let ws = f.gep(w, p, 8);
            f.store(Type::F64, inv_n, ws);
        });
    });
    f.ret(None);
    f.finish();

    Workload {
        name: "particlefilter",
        domain: "Medical Imaging",
        paper_loc: 602,
        module: mb.finish().expect("particlefilter verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(particles: i32, frames: i32) -> Vec<f64> {
    let (noise_x, noise_y) = make_noise(particles, frames);
    let n = particles as usize;
    let inv_n = 1.0 / f64::from(particles);
    let mut x = vec![10.0f64; n];
    let mut y = vec![20.0f64; n];
    let mut w = vec![inv_n; n];
    let mut cdf = vec![0.0f64; n];
    let mut out = Vec::new();
    for frame in 1..=frames {
        let (ox, oy) = obj_pos(f64::from(frame));
        let nbase = ((frame - 1) * particles) as usize;
        let mut wsum = 0.0;
        for p in 0..n {
            x[p] = (x[p] + 1.0) + noise_x[nbase + p];
            y[p] = (y[p] - 2.0) + noise_y[nbase + p];
            let dx = x[p] - ox;
            let dy = y[p] - oy;
            let lik = (-((dx * dx + dy * dy) / (2.0 * SIGMA2))).exp();
            w[p] *= lik;
            wsum += w[p];
        }
        let mut xe = 0.0;
        let mut ye = 0.0;
        let mut run = 0.0;
        for p in 0..n {
            w[p] /= wsum;
            xe += w[p] * x[p];
            ye += w[p] * y[p];
            run += w[p];
            cdf[p] = run;
        }
        out.push(xe);
        out.push(ye);
        let mut xn = vec![0.0f64; n];
        let mut yn = vec![0.0f64; n];
        for p in 0..n {
            let u = 0.5 / f64::from(particles) + (p as f64) * inv_n;
            let mut idx = n - 1;
            for (k, c) in cdf.iter().enumerate() {
                if *c >= u {
                    idx = k;
                    break;
                }
            }
            xn[p] = x[idx];
            yn[p] = y[idx];
        }
        x.copy_from_slice(&xn);
        y.copy_from_slice(&yn);
        w.fill(inv_n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got = w.run().outputs;
        let expected: Vec<u64> = reference(8, 2).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn estimates_track_object() {
        let out = reference(32, 4);
        // Final frame estimate should be near the object position.
        let (ox, oy) = obj_pos(4.0);
        let xe = out[out.len() - 2];
        let ye = out[out.len() - 1];
        assert!((xe - ox).abs() < 3.0, "xe {xe} vs {ox}");
        assert!((ye - oy).abs() < 3.0, "ye {ye} vs {oy}");
    }
}
