//! Small construction helpers shared by the benchmark ports: counted loops
//! with loop-carried values, and deterministic input generation.

use epvf_ir::{FunctionBuilder, IcmpPred, Type, Value};

/// Build a counted `for i in lo..hi` loop with `carried` loop-carried
/// values. `body` receives the induction variable and the current carried
/// values, and returns the next-iteration carried values (same arity/order).
/// Returns the carried values as they stand when the loop exits. The
/// builder is positioned in the exit block afterwards.
///
/// The induction variable is a signed `i32`; the loop runs while `i < hi`.
///
/// # Panics
/// Panics if `body` returns a different number of values than `carried`.
pub fn for_range(
    f: &mut FunctionBuilder<'_>,
    lo: Value,
    hi: Value,
    carried: &[(Type, Value)],
    body: impl FnOnce(&mut FunctionBuilder<'_>, Value, &[Value]) -> Vec<Value>,
) -> Vec<Value> {
    let pre = f.current_block();
    let header = f.create_block("for.header");
    let body_bb = f.create_block("for.body");
    let exit = f.create_block("for.exit");
    f.br(header);
    f.switch_to(header);
    let i = f.phi(Type::I32, vec![(pre, lo)]);
    let vars: Vec<Value> = carried
        .iter()
        .map(|(ty, init)| f.phi(*ty, vec![(pre, *init)]))
        .collect();
    let cont = f.icmp(IcmpPred::Slt, Type::I32, i, hi);
    f.cond_br(cont, body_bb, exit);
    f.switch_to(body_bb);
    let next = body(f, i, &vars);
    assert_eq!(next.len(), vars.len(), "carried-value arity mismatch");
    let i2 = f.add(Type::I32, i, Value::i32(1));
    let backedge = f.current_block();
    f.add_incoming(i, backedge, i2);
    for (v, n) in vars.iter().zip(&next) {
        f.add_incoming(*v, backedge, *n);
    }
    f.br(header);
    f.switch_to(exit);
    vars
}

/// `for_range` without carried values.
pub fn for_simple(
    f: &mut FunctionBuilder<'_>,
    lo: i32,
    hi: Value,
    body: impl FnOnce(&mut FunctionBuilder<'_>, Value),
) {
    for_range(f, Value::i32(lo), hi, &[], |f, i, _| {
        body(f, i);
        vec![]
    });
}

/// Deterministic pseudo-random `f64` stream in `[0, 1)` (SplitMix64-based),
/// used both to initialize workload globals and by the Rust reference
/// implementations the tests compare against.
#[derive(Debug, Clone)]
pub struct InputStream(u64);

impl InputStream {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        InputStream(seed.wrapping_mul(2).wrapping_add(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Next integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % u64::from(bound.max(1))) as u32
    }

    /// A vector of floats in `[lo, hi)`.
    pub fn f64s(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| lo + self.next_f64() * (hi - lo)).collect()
    }

    /// A vector of ints in `[0, bound)`.
    pub fn i32s(&mut self, n: usize, bound: u32) -> Vec<i32> {
        (0..n).map(|_| self.next_below(bound) as i32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epvf_interp::{ExecConfig, Interpreter};
    use epvf_ir::ModuleBuilder;

    #[test]
    fn for_range_accumulates_carried_values() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        // sum = Σ i, prod-ish = Σ 2i for i in 0..10
        let finals = for_range(
            &mut f,
            Value::i32(0),
            Value::i32(10),
            &[(Type::I32, Value::i32(0)), (Type::I32, Value::i32(0))],
            |f, i, vars| {
                let s = f.add(Type::I32, vars[0], i);
                let d = f.add(Type::I32, i, i);
                let t = f.add(Type::I32, vars[1], d);
                vec![s, t]
            },
        );
        f.output(Type::I32, finals[0]);
        f.output(Type::I32, finals[1]);
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let r = Interpreter::new(&m, ExecConfig::default())
            .run("main", &[])
            .expect("runs");
        assert_eq!(r.outputs, vec![45, 90]);
    }

    #[test]
    fn nested_loops_compose() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", vec![], None);
        let finals = for_range(
            &mut f,
            Value::i32(0),
            Value::i32(4),
            &[(Type::I32, Value::i32(0))],
            |f, i, outer| {
                let inner = for_range(
                    f,
                    Value::i32(0),
                    Value::i32(3),
                    &[(Type::I32, outer[0])],
                    |f, j, acc| {
                        let p = f.mul(Type::I32, i, j);
                        vec![f.add(Type::I32, acc[0], p)]
                    },
                );
                vec![inner[0]]
            },
        );
        f.output(Type::I32, finals[0]);
        f.ret(None);
        f.finish();
        let m = mb.finish().expect("verifies");
        let r = Interpreter::new(&m, ExecConfig::default())
            .run("main", &[])
            .expect("runs");
        // Σ_{i<4} Σ_{j<3} i*j = (0+1+2+3)*(0+1+2) = 18
        assert_eq!(r.outputs, vec![18]);
    }

    #[test]
    fn input_stream_is_deterministic_and_bounded() {
        let mut a = InputStream::new(5);
        let mut b = InputStream::new(5);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
        }
        let v = a.i32s(50, 10);
        assert!(v.iter().all(|x| (0..10).contains(x)));
        let f = a.f64s(50, -2.0, 3.0);
        assert!(f.iter().all(|x| (-2.0..3.0).contains(x)));
    }
}
