//! PathFinder (`pathfinder`) — Rodinia's grid dynamic-programming kernel
//! (Table IV: 135 LOC, Grid Traversal). This is the benchmark the paper's
//! running example (Fig. 3) is drawn from.
//!
//! Each row's cost is the cell weight plus the cheapest of the three
//! reachable cells of the previous row; the final row of costs is output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{IcmpPred, ModuleBuilder, Type, Value};

/// Build `pathfinder` at the given scale.
pub fn build(scale: Scale) -> Workload {
    build_variant(scale, 0)
}

/// Alternate-input build (identical static structure; see `mm`).
pub fn build_variant(scale: Scale, variant: u64) -> Workload {
    let (rows, cols) = scale.pick((6, 12), (10, 30), (16, 64));
    build_grid_variant(rows, cols, variant)
}

/// Build `pathfinder` for an explicit grid.
pub fn build_grid(rows: i32, cols: i32) -> Workload {
    build_grid_variant(rows, cols, 0)
}

/// [`build_grid`] with an input-data variant.
pub fn build_grid_variant(rows: i32, cols: i32, variant: u64) -> Workload {
    let mut input = InputStream::new(0xBAD9E ^ variant.wrapping_mul(0x9E37_79B9));
    let wall = input.i32s((rows * cols) as usize, 10);

    let mut mb = ModuleBuilder::new("pathfinder");
    let gwall = mb.global_i32s("wall", &wall);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pwall = f.gep(Value::Global(gwall), Value::i32(0), 1);
    let ncols = Value::i32(cols);
    let src0 = f.malloc(Value::i64(4 * i64::from(cols)));
    let dst0 = f.malloc(Value::i64(4 * i64::from(cols)));

    // src = wall[0]
    for_simple(&mut f, 0, ncols, |f, j| {
        let w = f.gep(pwall, j, 4);
        let v = f.load(Type::I32, w);
        let s = f.gep(src0, j, 4);
        f.store(Type::I32, v, s);
    });

    // Row sweep with src/dst pointer swap carried through the loop.
    let finals = for_range(
        &mut f,
        Value::i32(1),
        Value::i32(rows),
        &[(Type::Ptr, src0), (Type::Ptr, dst0)],
        |f, i, bufs| {
            let (src, dst) = (bufs[0], bufs[1]);
            for_simple(f, 0, ncols, |f, j| {
                // Clamp neighbour columns with selects (no extra blocks).
                let jm1 = f.sub(Type::I32, j, Value::i32(1));
                let has_left = f.icmp(IcmpPred::Sgt, Type::I32, j, Value::i32(0));
                let jl = f.select(Type::I32, has_left, jm1, j);
                let jp1 = f.add(Type::I32, j, Value::i32(1));
                let last = Value::i32(cols - 1);
                let has_right = f.icmp(IcmpPred::Slt, Type::I32, j, last);
                let jr = f.select(Type::I32, has_right, jp1, j);

                let lc = f.gep(src, jl, 4);
                let left = f.load(Type::I32, lc);
                let cc = f.gep(src, j, 4);
                let center = f.load(Type::I32, cc);
                let rc = f.gep(src, jr, 4);
                let right = f.load(Type::I32, rc);

                let lt = f.icmp(IcmpPred::Slt, Type::I32, left, center);
                let m1 = f.select(Type::I32, lt, left, center);
                let rt = f.icmp(IcmpPred::Slt, Type::I32, right, m1);
                let best = f.select(Type::I32, rt, right, m1);

                let rowb = f.mul(Type::I32, i, Value::i32(cols));
                let wi = f.add(Type::I32, rowb, j);
                let wslot = f.gep(pwall, wi, 4);
                let w = f.load(Type::I32, wslot);
                let cost = f.add(Type::I32, w, best);
                let dslot = f.gep(dst, j, 4);
                f.store(Type::I32, cost, dslot);
            });
            vec![dst, src] // swap
        },
    );

    // Output the final cost row (lives in finals[0] after the last swap).
    for_simple(&mut f, 0, ncols, |f, j| {
        let slot = f.gep(finals[0], j, 4);
        let v = f.load(Type::I32, slot);
        f.output(Type::I32, v);
    });
    f.ret(None);
    f.finish();

    Workload {
        name: "pathfinder",
        domain: "Grid Traversal",
        paper_loc: 135,
        module: mb.finish().expect("pathfinder verifies"),
        args: vec![],
    }
}

/// Rust reference.
pub fn reference(rows: i32, cols: i32) -> Vec<i32> {
    let mut input = InputStream::new(0xBAD9E);
    let wall = input.i32s((rows * cols) as usize, 10);
    let cols = cols as usize;
    let mut src: Vec<i32> = wall[..cols].to_vec();
    let mut dst = vec![0i32; cols];
    for i in 1..rows as usize {
        for j in 0..cols {
            let jl = if j > 0 { j - 1 } else { j };
            let jr = if j < cols - 1 { j + 1 } else { j };
            let best = src[jl].min(src[j]).min(src[jr]);
            dst[j] = wall[i * cols + j] + best;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let w = build(Scale::Tiny);
        let r = w.run();
        let expected = reference(6, 12);
        let got: Vec<i32> = r.outputs.iter().map(|b| *b as u32 as i32).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn odd_and_even_row_counts_swap_correctly() {
        for rows in [2, 3, 5, 8] {
            let w = build_grid(rows, 9);
            let got: Vec<i32> = w.run().outputs.iter().map(|b| *b as u32 as i32).collect();
            assert_eq!(got, reference(rows, 9), "rows = {rows}");
        }
    }
}
