//! LAVA Molecular Dynamics (`lavaMD`) — Rodinia's particle-interaction
//! kernel (Table IV: 218 LOC, Molecular Dynamics).
//!
//! Particles live in a 1-D row of boxes; each particle accumulates a
//! short-range potential/force contribution from every particle in its own
//! and adjacent boxes (`exp(−α²·r²)` kernel). Forces are output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{FunctionBuilder, IcmpPred, ModuleBuilder, Type, Value};

const ALPHA2: f64 = 0.5;

/// Build `lavaMD` at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (boxes, per_box) = scale.pick((2, 4), (3, 6), (4, 8));
    build_boxes(boxes, per_box)
}

fn make_particles(boxes: i32, per_box: i32) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut input = InputStream::new(0x1A7A);
    let n = (boxes * per_box) as usize;
    let x = input.f64s(n, 0.0, boxes as f64);
    let y = input.f64s(n, 0.0, 1.0);
    let z = input.f64s(n, 0.0, 1.0);
    let q = input.f64s(n, 0.1, 1.0);
    (x, y, z, q)
}

/// Build `lavaMD` for an explicit box layout.
pub fn build_boxes(boxes: i32, per_box: i32) -> Workload {
    let (x, y, z, q) = make_particles(boxes, per_box);
    let n = boxes * per_box;

    let mut mb = ModuleBuilder::new("lavaMD");
    let gx = mb.global_f64s("x", &x);
    let gy = mb.global_f64s("y", &y);
    let gz = mb.global_f64s("z", &z);
    let gq = mb.global_f64s("q", &q);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let px = f.gep(Value::Global(gx), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let py = f.gep(Value::Global(gy), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pz = f.gep(Value::Global(gz), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pq = f.gep(Value::Global(gq), Value::i32(0), 1);

    let fx = f.malloc(Value::i64(8 * i64::from(n)));
    let fy = f.malloc(Value::i64(8 * i64::from(n)));
    let fz = f.malloc(Value::i64(8 * i64::from(n)));
    let fe = f.malloc(Value::i64(8 * i64::from(n)));
    for_simple(&mut f, 0, Value::i32(n), |f, i| {
        for buf in [fx, fy, fz, fe] {
            let s = f.gep(buf, i, 8);
            f.store(Type::F64, Value::f64(0.0), s);
        }
    });

    let load_g = |f: &mut FunctionBuilder<'_>, base: Value, i: Value| {
        let s = f.gep(base, i, 8);
        f.load(Type::F64, s)
    };

    for_simple(&mut f, 0, Value::i32(boxes), |f, b| {
        // Neighbour boxes b−1, b, b+1 (skipping out-of-range ones).
        for_simple(f, -1, Value::i32(2), |f, d| {
            let nb = f.add(Type::I32, b, d);
            let ge0 = f.icmp(IcmpPred::Sge, Type::I32, nb, Value::i32(0));
            let ltb = f.icmp(IcmpPred::Slt, Type::I32, nb, Value::i32(boxes));
            let in_range = f.and(Type::I1, ge0, ltb);
            let work = f.create_block("interact");
            let skip = f.create_block("skip");
            f.cond_br(in_range, work, skip);
            f.switch_to(work);
            for_simple(f, 0, Value::i32(per_box), |f, i| {
                let bb = f.mul(Type::I32, b, Value::i32(per_box));
                let pi = f.add(Type::I32, bb, i);
                let xi = load_g(f, px, pi);
                let yi = load_g(f, py, pi);
                let zi = load_g(f, pz, pi);
                let acc = for_range(
                    f,
                    Value::i32(0),
                    Value::i32(per_box),
                    &[
                        (Type::F64, Value::f64(0.0)),
                        (Type::F64, Value::f64(0.0)),
                        (Type::F64, Value::f64(0.0)),
                        (Type::F64, Value::f64(0.0)),
                    ],
                    |f, jx, acc| {
                        let nbb = f.mul(Type::I32, nb, Value::i32(per_box));
                        let pj = f.add(Type::I32, nbb, jx);
                        let xj = load_g(f, px, pj);
                        let yj = load_g(f, py, pj);
                        let zj = load_g(f, pz, pj);
                        let qj = load_g(f, pq, pj);
                        let dx = f.fsub(Type::F64, xi, xj);
                        let dy = f.fsub(Type::F64, yi, yj);
                        let dz = f.fsub(Type::F64, zi, zj);
                        let dx2 = f.fmul(Type::F64, dx, dx);
                        let dy2 = f.fmul(Type::F64, dy, dy);
                        let dz2 = f.fmul(Type::F64, dz, dz);
                        let r2a = f.fadd(Type::F64, dx2, dy2);
                        let r2 = f.fadd(Type::F64, r2a, dz2);
                        let u2 = f.fmul(Type::F64, r2, Value::f64(ALPHA2));
                        let nu2 = f.fneg(Type::F64, u2);
                        let vij = f.exp(Type::F64, nu2);
                        let s = f.fmul(Type::F64, vij, qj);
                        let e = f.fadd(Type::F64, acc[3], s);
                        let sx = f.fmul(Type::F64, s, dx);
                        let ax = f.fadd(Type::F64, acc[0], sx);
                        let sy = f.fmul(Type::F64, s, dy);
                        let ay = f.fadd(Type::F64, acc[1], sy);
                        let sz = f.fmul(Type::F64, s, dz);
                        let az = f.fadd(Type::F64, acc[2], sz);
                        vec![ax, ay, az, e]
                    },
                );
                for (buf, a) in [(fx, acc[0]), (fy, acc[1]), (fz, acc[2]), (fe, acc[3])] {
                    let s = f.gep(buf, pi, 8);
                    let cur = f.load(Type::F64, s);
                    let upd = f.fadd(Type::F64, cur, a);
                    f.store(Type::F64, upd, s);
                }
            });
            f.br(skip);
            f.switch_to(skip);
        });
    });

    for buf in [fx, fy, fz, fe] {
        for_simple(&mut f, 0, Value::i32(n), |f, i| {
            let s = f.gep(buf, i, 8);
            let v = f.load(Type::F64, s);
            f.output(Type::F64, v);
        });
    }
    f.ret(None);
    f.finish();

    Workload {
        name: "lavaMD",
        domain: "Molecular Dynamics",
        paper_loc: 218,
        module: mb.finish().expect("lavaMD verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(boxes: i32, per_box: i32) -> Vec<f64> {
    let (x, y, z, q) = make_particles(boxes, per_box);
    let n = (boxes * per_box) as usize;
    let mut fx = vec![0.0f64; n];
    let mut fy = vec![0.0f64; n];
    let mut fz = vec![0.0f64; n];
    let mut fe = vec![0.0f64; n];
    for b in 0..boxes {
        for d in -1..2 {
            let nb = b + d;
            if !(0..boxes).contains(&nb) {
                continue;
            }
            for i in 0..per_box {
                let pi = (b * per_box + i) as usize;
                let (xi, yi, zi) = (x[pi], y[pi], z[pi]);
                let mut acc = [0.0f64; 4];
                for jx in 0..per_box {
                    let pj = (nb * per_box + jx) as usize;
                    let dx = xi - x[pj];
                    let dy = yi - y[pj];
                    let dz = zi - z[pj];
                    let r2 = (dx * dx + dy * dy) + dz * dz;
                    let vij = (-(r2 * ALPHA2)).exp();
                    let s = vij * q[pj];
                    acc[3] += s;
                    acc[0] += s * dx;
                    acc[1] += s * dy;
                    acc[2] += s * dz;
                }
                fx[pi] += acc[0];
                fy[pi] += acc[1];
                fz[pi] += acc[2];
                fe[pi] += acc[3];
            }
        }
    }
    let mut out = fx;
    out.extend(fy);
    out.extend(fz);
    out.extend(fe);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got = w.run().outputs;
        let expected: Vec<u64> = reference(2, 4).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn self_interaction_energy_positive() {
        let out = reference(2, 4);
        let n = 8;
        let fe = &out[3 * n..];
        assert!(
            fe.iter().all(|e| *e > 0.0),
            "every particle sees itself: energy > 0"
        );
    }
}
