//! # epvf-workloads — the paper's benchmark suite, ported to the mini-IR
//!
//! The ten HPC benchmarks of the ePVF paper's Table IV (eight Rodinia
//! OpenMP kernels, a basic matrix multiplication, and a miniaturized
//! LULESH), rewritten against [`epvf_ir`]'s builder API. Inputs are
//! deterministic, outputs are emitted through `output` instructions (the
//! ACE-analysis roots), and every kernel is validated bit-exactly against a
//! plain-Rust reference implementation.
//!
//! ```
//! use epvf_workloads::{suite, Scale};
//!
//! for w in suite(Scale::Tiny) {
//!     let golden = w.golden();
//!     println!("{:15} {:7} dynamic IR instructions", w.name, golden.dyn_insts);
//!     assert!(!golden.outputs.is_empty());
//! }
//! ```

#![warn(missing_docs)]

pub mod dsl;
mod workload;

pub mod bfs;
pub mod hotspot;
pub mod kmeans;
pub mod lavamd;
pub mod lud;
pub mod lulesh;
pub mod mm;
pub mod nw;
pub mod particlefilter;
pub mod pathfinder;
pub mod srad;

pub use workload::{Scale, Workload};

/// Build the full ten-benchmark suite in the paper's Table IV order
/// (largest original codebase first).
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        lulesh::build(scale),
        particlefilter::build(scale),
        srad::build(scale),
        nw::build(scale),
        hotspot::build(scale),
        lavamd::build(scale),
        bfs::build(scale),
        lud::build(scale),
        pathfinder::build(scale),
        mm::build(scale),
    ]
}

/// The Table IV suite plus `kmeans` (which the paper lists only in its
/// Table II crash-frequency study).
pub fn extended_suite(scale: Scale) -> Vec<Workload> {
    let mut all = suite(scale);
    all.push(kmeans::build(scale));
    all
}

/// The Table IV suite ordered by golden-run length, shortest first — the
/// order in which exhaustive `(site, bit)` sweeps are affordable. The
/// oracle smoke harness takes the leading entries, so "the two smallest
/// workloads" tracks any future re-scaling of inputs instead of being
/// hard-coded.
pub fn smallest_first(scale: Scale) -> Vec<Workload> {
    let mut all = suite(scale);
    all.sort_by_key(|w| w.golden().dyn_insts);
    all
}

/// Look up one workload by name with an alternate input-data variant
/// (§V evaluates protection on different inputs than those used to compute
/// the ePVF ranking). Only the five case-study benchmarks support
/// variants; variant 0 equals [`by_name`].
pub fn by_name_variant(name: &str, scale: Scale, variant: u64) -> Option<Workload> {
    match name {
        "mm" => Some(mm::build_variant(scale, variant)),
        "pathfinder" => Some(pathfinder::build_variant(scale, variant)),
        "hotspot" => Some(hotspot::build_variant(scale, variant)),
        "lud" => Some(lud::build_variant(scale, variant)),
        "nw" => Some(nw::build_variant(scale, variant)),
        _ if variant == 0 => by_name(name, scale),
        _ => None,
    }
}

/// Look up one workload by its paper name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    match name {
        "kmeans" => Some(kmeans::build(scale)),
        "lulesh" => Some(lulesh::build(scale)),
        "particlefilter" => Some(particlefilter::build(scale)),
        "srad" => Some(srad::build(scale)),
        "nw" => Some(nw::build(scale)),
        "hotspot" => Some(hotspot::build(scale)),
        "lavaMD" | "lavamd" => Some(lavamd::build(scale)),
        "bfs" => Some(bfs::build(scale)),
        "lud" => Some(lud::build(scale)),
        "pathfinder" => Some(pathfinder::build(scale)),
        "mm" => Some(mm::build(scale)),
        _ => None,
    }
}
