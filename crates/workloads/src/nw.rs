//! Needleman–Wunsch (`nw`) — Rodinia's global sequence alignment DP kernel
//! (Table IV: 272 LOC, Bioinformatics).
//!
//! Fills the `(n+1)×(n+1)` score matrix with
//! `max(diag + sim, up − penalty, left − penalty)`, outputs the last row,
//! then performs the traceback from `(n, n)` emitting the alignment moves
//! (1 = diagonal, 2 = up, 3 = left, 0 = done) as the serial Rodinia code
//! does.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{FunctionBuilder, IcmpPred, ModuleBuilder, Type, Value};

const PENALTY: i32 = 2;
const MATCH: i32 = 3;
const MISMATCH: i32 = -1;

/// Build `nw` at the given scale.
pub fn build(scale: Scale) -> Workload {
    build_variant(scale, 0)
}

/// Alternate-input build (identical static structure; see `mm`).
pub fn build_variant(scale: Scale, variant: u64) -> Workload {
    build_n_variant(scale.pick(8, 16, 24), variant)
}

/// Build `nw` for sequences of length `n`.
pub fn build_n(n: i32) -> Workload {
    build_n_variant(n, 0)
}

/// [`build_n`] with an input-data variant.
pub fn build_n_variant(n: i32, variant: u64) -> Workload {
    let mut input = InputStream::new(0x5E05 ^ variant.wrapping_mul(0x9E37_79B9));
    let s1 = input.i32s(n as usize, 4);
    let s2 = input.i32s(n as usize, 4);

    let mut mb = ModuleBuilder::new("nw");
    let g1 = mb.global_i32s("seq1", &s1);
    let g2 = mb.global_i32s("seq2", &s2);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let ps1 = f.gep(Value::Global(g1), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let ps2 = f.gep(Value::Global(g2), Value::i32(0), 1);
    let dim = n + 1;
    let score = f.malloc(Value::i64(4 * i64::from(dim) * i64::from(dim)));

    // Borders: score[i][0] = -i*penalty, score[0][j] = -j*penalty.
    for_simple(&mut f, 0, Value::i32(dim), |f, i| {
        let neg = f.mul(Type::I32, i, Value::i32(-PENALTY));
        let ri = f.mul(Type::I32, i, Value::i32(dim));
        let rslot = f.gep(score, ri, 4);
        f.store(Type::I32, neg, rslot);
        let cslot = f.gep(score, i, 4);
        f.store(Type::I32, neg, cslot);
    });

    for_simple(&mut f, 1, Value::i32(dim), |f, i| {
        for_simple(f, 1, Value::i32(dim), |f, j| {
            let im1 = f.sub(Type::I32, i, Value::i32(1));
            let jm1 = f.sub(Type::I32, j, Value::i32(1));
            let a_slot = f.gep(ps1, im1, 4);
            let a = f.load(Type::I32, a_slot);
            let b_slot = f.gep(ps2, jm1, 4);
            let b = f.load(Type::I32, b_slot);
            let same = f.icmp(IcmpPred::Eq, Type::I32, a, b);
            let sim = f.select(Type::I32, same, Value::i32(MATCH), Value::i32(MISMATCH));

            let row = f.mul(Type::I32, i, Value::i32(dim));
            let rowm1 = f.mul(Type::I32, im1, Value::i32(dim));
            let di = f.add(Type::I32, rowm1, jm1);
            let dslot = f.gep(score, di, 4);
            let diag = f.load(Type::I32, dslot);
            let ui = f.add(Type::I32, rowm1, j);
            let uslot = f.gep(score, ui, 4);
            let up = f.load(Type::I32, uslot);
            let li = f.add(Type::I32, row, jm1);
            let lslot = f.gep(score, li, 4);
            let left = f.load(Type::I32, lslot);

            let cand1 = f.add(Type::I32, diag, sim);
            let cand2 = f.sub(Type::I32, up, Value::i32(PENALTY));
            let cand3 = f.sub(Type::I32, left, Value::i32(PENALTY));
            let gt12 = f.icmp(IcmpPred::Sgt, Type::I32, cand1, cand2);
            let m12 = f.select(Type::I32, gt12, cand1, cand2);
            let gt3 = f.icmp(IcmpPred::Sgt, Type::I32, m12, cand3);
            let best = f.select(Type::I32, gt3, m12, cand3);

            let ci = f.add(Type::I32, row, j);
            let cslot = f.gep(score, ci, 4);
            f.store(Type::I32, best, cslot);
        });
    });

    // Output the last row.
    let last_row = f.mul(Type::I32, Value::i32(n), Value::i32(dim));
    for_simple(&mut f, 0, Value::i32(dim), |f, j| {
        let idx = f.add(Type::I32, last_row, j);
        let slot = f.gep(score, idx, 4);
        let v = f.load(Type::I32, slot);
        f.output(Type::I32, v);
    });

    // Traceback from (n, n): 2n fixed steps with select-guarded moves.
    let at = |f: &mut FunctionBuilder<'_>, i: Value, j: Value| {
        let row = f.mul(Type::I32, i, Value::i32(dim));
        let idx = f.add(Type::I32, row, j);
        let slot = f.gep(score, idx, 4);
        f.load(Type::I32, slot)
    };
    for_range(
        &mut f,
        Value::i32(0),
        Value::i32(2 * n),
        &[(Type::I32, Value::i32(n)), (Type::I32, Value::i32(n))],
        |f, _step, ij| {
            let (i, j) = (ij[0], ij[1]);
            let zero = Value::i32(0);
            let one = Value::i32(1);
            let i_pos = f.icmp(IcmpPred::Sgt, Type::I32, i, zero);
            let j_pos = f.icmp(IcmpPred::Sgt, Type::I32, j, zero);
            let active = f.or(Type::I1, i_pos, j_pos);
            let im1r = f.sub(Type::I32, i, one);
            let im1 = f.select(Type::I32, i_pos, im1r, zero);
            let jm1r = f.sub(Type::I32, j, one);
            let jm1 = f.select(Type::I32, j_pos, jm1r, zero);

            let cur = at(f, i, j);
            let diag = at(f, im1, jm1);
            let up = at(f, im1, j);
            let left = at(f, i, jm1);
            let a_slot = f.gep(ps1, im1, 4);
            let av = f.load(Type::I32, a_slot);
            let b_slot = f.gep(ps2, jm1, 4);
            let bv = f.load(Type::I32, b_slot);
            let same = f.icmp(IcmpPred::Eq, Type::I32, av, bv);
            let sim = f.select(Type::I32, same, Value::i32(MATCH), Value::i32(MISMATCH));

            let both = f.and(Type::I1, i_pos, j_pos);
            let dsum = f.add(Type::I32, diag, sim);
            let d_eq = f.icmp(IcmpPred::Eq, Type::I32, cur, dsum);
            let is_diag = f.and(Type::I1, both, d_eq);
            let usum = f.sub(Type::I32, up, Value::i32(PENALTY));
            let u_eq = f.icmp(IcmpPred::Eq, Type::I32, cur, usum);
            let u_ok = f.and(Type::I1, i_pos, u_eq);
            let not_diag = f.xor(Type::I1, is_diag, Value::bool(true));
            let is_up_m = f.and(Type::I1, not_diag, u_ok);
            let lsum = f.sub(Type::I32, left, Value::i32(PENALTY));
            let l_eq = f.icmp(IcmpPred::Eq, Type::I32, cur, lsum);
            let l_ok = f.and(Type::I1, j_pos, l_eq);
            let not_up = f.xor(Type::I1, is_up_m, Value::bool(true));
            let nd_nu = f.and(Type::I1, not_diag, not_up);
            let is_left_m = f.and(Type::I1, nd_nu, l_ok);
            // Boundary fallbacks: column 0 forces up, row 0 forces left.
            let none_matched = {
                let nl = f.xor(Type::I1, is_left_m, Value::bool(true));
                f.and(Type::I1, nd_nu, nl)
            };
            let fb_up = f.and(Type::I1, none_matched, i_pos);
            let is_up = f.or(Type::I1, is_up_m, fb_up);
            let nfb = f.xor(Type::I1, fb_up, Value::bool(true));
            let fb_left = f.and(Type::I1, none_matched, nfb);
            let is_left = f.or(Type::I1, is_left_m, fb_left);

            let move_ul = f.select(Type::I32, is_up, Value::i32(2), Value::i32(3));
            let move_any = f.select(Type::I32, is_diag, one, move_ul);
            let code = f.select(Type::I32, active, move_any, zero);
            f.output(Type::I32, code);

            let dec_i = f.or(Type::I1, is_diag, is_up);
            let step_i = f.and(Type::I1, active, dec_i);
            let ni = f.select(Type::I32, step_i, im1, i);
            let dec_j = f.or(Type::I1, is_diag, is_left);
            let step_j = f.and(Type::I1, active, dec_j);
            let nj = f.select(Type::I32, step_j, jm1, j);
            vec![ni, nj]
        },
    );
    f.free(score);
    f.ret(None);
    f.finish();

    Workload {
        name: "nw",
        domain: "Bioinformatics",
        paper_loc: 272,
        module: mb.finish().expect("nw verifies"),
        args: vec![],
    }
}

/// Rust reference (matrix fill + traceback, same operation order).
pub fn reference(n: i32) -> Vec<i32> {
    let mut input = InputStream::new(0x5E05);
    let s1 = input.i32s(n as usize, 4);
    let s2 = input.i32s(n as usize, 4);
    let dim = (n + 1) as usize;
    let mut score = vec![0i32; dim * dim];
    for i in 0..dim as i32 {
        score[(i as usize) * dim] = -i * PENALTY;
        score[i as usize] = -i * PENALTY;
    }
    for i in 1..dim {
        for j in 1..dim {
            let sim = if s1[i - 1] == s2[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let best = (score[(i - 1) * dim + (j - 1)] + sim)
                .max(score[(i - 1) * dim + j] - PENALTY)
                .max(score[i * dim + (j - 1)] - PENALTY);
            score[i * dim + j] = best;
        }
    }
    let mut out: Vec<i32> = score[(dim - 1) * dim..].to_vec();
    // Traceback, mirroring the IR's select-guarded fixed-step loop.
    let (mut i, mut j) = (n, n);
    for _ in 0..2 * n {
        let active = i > 0 || j > 0;
        let im1 = if i > 0 { i - 1 } else { 0 } as usize;
        let jm1 = if j > 0 { j - 1 } else { 0 } as usize;
        let cur = score[i as usize * dim + j as usize];
        let diag = score[im1 * dim + jm1];
        let up = score[im1 * dim + j as usize];
        let left = score[i as usize * dim + jm1];
        let sim = if s1[im1] == s2[jm1] { MATCH } else { MISMATCH };
        let is_diag = i > 0 && j > 0 && cur == diag + sim;
        let is_up_m = !is_diag && i > 0 && cur == up - PENALTY;
        let is_left_m = !is_diag && !is_up_m && j > 0 && cur == left - PENALTY;
        let none = !is_diag && !is_up_m && !is_left_m;
        let fb_up = none && i > 0;
        let is_up = is_up_m || fb_up;
        let is_left = is_left_m || (none && !fb_up);
        let code = if !active {
            0
        } else if is_diag {
            1
        } else if is_up {
            2
        } else {
            3
        };
        out.push(code);
        if active && (is_diag || is_up) {
            i -= 1;
        }
        if active && (is_diag || is_left) {
            j -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let w = build(Scale::Tiny);
        let got: Vec<i32> = w.run().outputs.iter().map(|b| *b as u32 as i32).collect();
        assert_eq!(got, reference(8));
    }

    #[test]
    fn traceback_reaches_origin_and_has_valid_moves() {
        let n = 12;
        let got: Vec<i32> = build_n(n)
            .run()
            .outputs
            .iter()
            .map(|b| *b as u32 as i32)
            .collect();
        assert_eq!(got.len(), (n + 1 + 2 * n) as usize);
        let moves = &got[(n + 1) as usize..];
        let (mut i, mut j) = (n, n);
        for m in moves {
            match m {
                0 => assert!(i == 0 && j == 0, "done only at the origin"),
                1 => {
                    i -= 1;
                    j -= 1;
                }
                2 => i -= 1,
                3 => j -= 1,
                other => panic!("invalid move code {other}"),
            }
            assert!(i >= 0 && j >= 0);
        }
        assert_eq!((i, j), (0, 0), "traceback must consume both sequences");
    }
}
