//! The [`Workload`] type: a benchmark program plus its input, ready to run
//! under the interpreter or a fault-injection campaign.

use epvf_interp::{ExecConfig, Interpreter, Outcome, RunResult};
use epvf_ir::Module;

/// Input scale of a workload build.
///
/// The paper traces up to 9.5M dynamic instructions per benchmark on a
/// cluster; this reproduction scales inputs so full campaigns fit on a
/// laptop while keeping every code path exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Unit-test scale (a few thousand dynamic instructions).
    Tiny,
    /// Quick-experiment scale (roughly ten thousand).
    #[default]
    Small,
    /// Full harness scale (tens of thousands).
    Standard,
}

impl Scale {
    /// Pick one of three scale-dependent values.
    pub fn pick<T>(self, tiny: T, small: T, standard: T) -> T {
        match self {
            Scale::Tiny => tiny,
            Scale::Small => small,
            Scale::Standard => standard,
        }
    }
}

/// A built benchmark: module + entry arguments + provenance metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name as used in the paper's tables (e.g. `pathfinder`).
    pub name: &'static str,
    /// Application domain (paper Table IV).
    pub domain: &'static str,
    /// Lines of C code of the original benchmark (paper Table IV) — kept
    /// for the Table IV harness.
    pub paper_loc: usize,
    /// The program.
    pub module: Module,
    /// Entry arguments.
    pub args: Vec<u64>,
}

impl Workload {
    /// Entry function name (all workloads use `main`).
    pub const ENTRY: &'static str = "main";

    /// Execute fault-free with a full trace (the golden run).
    ///
    /// # Panics
    /// Panics if the workload fails to complete — a workload construction
    /// bug, not a simulated fault.
    pub fn golden(&self) -> RunResult {
        let r = Interpreter::new(&self.module, ExecConfig::default())
            .golden_run(Self::ENTRY, &self.args)
            .expect("workload entry is valid");
        assert_eq!(
            r.outcome,
            Outcome::Completed,
            "{}: golden run must complete",
            self.name
        );
        r
    }

    /// Execute fault-free without tracing.
    ///
    /// # Panics
    /// Panics if the entry signature is invalid (construction bug).
    pub fn run(&self) -> RunResult {
        Interpreter::new(&self.module, ExecConfig::default())
            .run(Self::ENTRY, &self.args)
            .expect("workload entry is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Tiny.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Standard.pick(1, 2, 3), 3);
        assert_eq!(Scale::default(), Scale::Small);
    }
}
