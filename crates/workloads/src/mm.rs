//! Matrix multiplication (`mm`) — the paper's basic linear-algebra kernel
//! (Table IV: 100 LOC, Linear Algebra).
//!
//! `C = A × B` over `n×n` double matrices; every element of `C` is program
//! output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{ModuleBuilder, Type, Value};

/// Build `mm` at the given scale.
pub fn build(scale: Scale) -> Workload {
    build_variant(scale, 0)
}

/// Build `mm` with an alternate input data set (same structure and static
/// instruction ids — only the global initializers change), for the §V
/// different-inputs protection evaluation.
pub fn build_variant(scale: Scale, variant: u64) -> Workload {
    let n = scale.pick(6, 10, 16);
    build_n_variant(n, variant)
}

/// Build `mm` for an explicit matrix dimension.
pub fn build_n(n: i32) -> Workload {
    build_n_variant(n, 0)
}

/// [`build_n`] with an input-data variant.
pub fn build_n_variant(n: i32, variant: u64) -> Workload {
    let mut input = InputStream::new(0xA11CE ^ variant.wrapping_mul(0x9E37_79B9));
    let a = input.f64s((n * n) as usize, -1.0, 1.0);
    let b = input.f64s((n * n) as usize, -1.0, 1.0);

    let mut mb = ModuleBuilder::new("mm");
    let ga = mb.global_f64s("a", &a);
    let gb = mb.global_f64s("b", &b);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pa = f.gep(Value::Global(ga), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pb = f.gep(Value::Global(gb), Value::i32(0), 1);
    let nn = Value::i32(n);
    let c = f.malloc(Value::i64(8 * i64::from(n) * i64::from(n)));

    for_simple(&mut f, 0, nn, |f, i| {
        for_simple(f, 0, nn, |f, j| {
            let row_base = f.mul(Type::I32, i, nn);
            let sum = for_range(
                f,
                Value::i32(0),
                nn,
                &[(Type::F64, Value::f64(0.0))],
                |f, k, acc| {
                    let ai = f.add(Type::I32, row_base, k);
                    let aslot = f.gep(pa, ai, 8);
                    let av = f.load(Type::F64, aslot);
                    let brow = f.mul(Type::I32, k, nn);
                    let bi = f.add(Type::I32, brow, j);
                    let bslot = f.gep(pb, bi, 8);
                    let bv = f.load(Type::F64, bslot);
                    let prod = f.fmul(Type::F64, av, bv);
                    vec![f.fadd(Type::F64, acc[0], prod)]
                },
            );
            let ci = f.add(Type::I32, row_base, j);
            let cslot = f.gep(c, ci, 8);
            f.store(Type::F64, sum[0], cslot);
        });
    });

    // Emit C as output.
    let total = Value::i32(n * n);
    for_simple(&mut f, 0, total, |f, i| {
        let slot = f.gep(c, i, 8);
        let v = f.load(Type::F64, slot);
        f.output(Type::F64, v);
    });
    f.free(c);
    f.ret(None);
    f.finish();

    Workload {
        name: "mm",
        domain: "Linear Algebra",
        paper_loc: 100,
        module: mb.finish().expect("mm verifies"),
        args: vec![],
    }
}

/// Rust reference, mirroring the IR's operation order exactly.
pub fn reference(n: i32) -> Vec<f64> {
    let mut input = InputStream::new(0xA11CE);
    let a = input.f64s((n * n) as usize, -1.0, 1.0);
    let b = input.f64s((n * n) as usize, -1.0, 1.0);
    let n = n as usize;
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0f64;
            for k in 0..n {
                sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let r = w.run();
        let expected = reference(6);
        let got: Vec<f64> = r.outputs.iter().map(|b| f64::from_bits(*b)).collect();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.to_bits(), e.to_bits(), "{g} vs {e}");
        }
    }

    #[test]
    fn scales_change_trace_length() {
        let tiny = build(Scale::Tiny).run().dyn_insts;
        let small = build(Scale::Small).run().dyn_insts;
        assert!(small > 2 * tiny);
        assert!(tiny > 1000, "tiny = {tiny}");
    }
}
