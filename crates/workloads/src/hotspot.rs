//! HotSpot (`hotspot`) — Rodinia's thermal simulation stencil
//! (Table IV: 218 LOC, Physics Simulation).
//!
//! Iterative 5-point stencil over a temperature grid driven by a power
//! density map, with clamped borders; final temperatures are output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{IcmpPred, ModuleBuilder, Type, Value};

const CAP: f64 = 0.5;
const RX: f64 = 0.2;
const RY: f64 = 0.15;
const RZ: f64 = 0.1;
const AMB: f64 = 80.0;

/// Build `hotspot` at the given scale.
pub fn build(scale: Scale) -> Workload {
    build_variant(scale, 0)
}

/// Alternate-input build (identical static structure; see `mm`).
pub fn build_variant(scale: Scale, variant: u64) -> Workload {
    let (dim, steps) = scale.pick((6, 3), (8, 5), (12, 8));
    build_grid_variant(dim, steps, variant)
}

fn make_inputs(dim: i32, variant: u64) -> (Vec<f64>, Vec<f64>) {
    let mut input = InputStream::new(0x407 ^ variant.wrapping_mul(0x9E37_79B9));
    let temp = input.f64s((dim * dim) as usize, 320.0, 340.0);
    let power = input.f64s((dim * dim) as usize, 0.0, 1.0);
    (temp, power)
}

/// Build `hotspot` for an explicit grid and step count.
pub fn build_grid(dim: i32, steps: i32) -> Workload {
    build_grid_variant(dim, steps, 0)
}

/// [`build_grid`] with an input-data variant.
pub fn build_grid_variant(dim: i32, steps: i32, variant: u64) -> Workload {
    let (temp0, power) = make_inputs(dim, variant);

    let mut mb = ModuleBuilder::new("hotspot");
    let gt = mb.global_f64s("temp", &temp0);
    let gp = mb.global_f64s("power", &power);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let ptemp = f.gep(Value::Global(gt), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let ppower = f.gep(Value::Global(gp), Value::i32(0), 1);
    let nd = Value::i32(dim);
    let cells = Value::i32(dim * dim);

    let t0 = f.malloc(Value::i64(8 * i64::from(dim) * i64::from(dim)));
    let t1 = f.malloc(Value::i64(8 * i64::from(dim) * i64::from(dim)));
    for_simple(&mut f, 0, cells, |f, i| {
        let s = f.gep(ptemp, i, 8);
        let v = f.load(Type::F64, s);
        let d = f.gep(t0, i, 8);
        f.store(Type::F64, v, d);
    });

    let finals = for_range(
        &mut f,
        Value::i32(0),
        Value::i32(steps),
        &[(Type::Ptr, t0), (Type::Ptr, t1)],
        |f, _step, bufs| {
            let (src, dst) = (bufs[0], bufs[1]);
            for_simple(f, 0, nd, |f, r| {
                for_simple(f, 0, nd, |f, c| {
                    let clamp =
                        |f: &mut epvf_ir::FunctionBuilder<'_>, x: Value, lo: i32, hi: i32| {
                            let too_low = f.icmp(IcmpPred::Slt, Type::I32, x, Value::i32(lo));
                            let cl = f.select(Type::I32, too_low, Value::i32(lo), x);
                            let too_high = f.icmp(IcmpPred::Sgt, Type::I32, cl, Value::i32(hi));
                            f.select(Type::I32, too_high, Value::i32(hi), cl)
                        };
                    let rm = f.sub(Type::I32, r, Value::i32(1));
                    let up_r = clamp(f, rm, 0, dim - 1);
                    let rp = f.add(Type::I32, r, Value::i32(1));
                    let dn_r = clamp(f, rp, 0, dim - 1);
                    let cm = f.sub(Type::I32, c, Value::i32(1));
                    let lf_c = clamp(f, cm, 0, dim - 1);
                    let cp = f.add(Type::I32, c, Value::i32(1));
                    let rt_c = clamp(f, cp, 0, dim - 1);

                    let at = |f: &mut epvf_ir::FunctionBuilder<'_>, row: Value, col: Value| {
                        let rb = f.mul(Type::I32, row, nd);
                        let idx = f.add(Type::I32, rb, col);
                        let slot = f.gep(src, idx, 8);
                        f.load(Type::F64, slot)
                    };
                    let center = at(f, r, c);
                    let up = at(f, up_r, c);
                    let down = at(f, dn_r, c);
                    let left = at(f, r, lf_c);
                    let right = at(f, r, rt_c);

                    let rb = f.mul(Type::I32, r, nd);
                    let idx = f.add(Type::I32, rb, c);
                    let pslot = f.gep(ppower, idx, 8);
                    let pw = f.load(Type::F64, pslot);

                    // delta = cap * (power
                    //               + (up + down − 2t)·ry
                    //               + (left + right − 2t)·rx
                    //               + (amb − t)·rz)
                    let two_t = f.fmul(Type::F64, center, Value::f64(2.0));
                    let vsum = f.fadd(Type::F64, up, down);
                    let vdiff = f.fsub(Type::F64, vsum, two_t);
                    let vterm = f.fmul(Type::F64, vdiff, Value::f64(RY));
                    let hsum = f.fadd(Type::F64, left, right);
                    let hdiff = f.fsub(Type::F64, hsum, two_t);
                    let hterm = f.fmul(Type::F64, hdiff, Value::f64(RX));
                    let adiff = f.fsub(Type::F64, Value::f64(AMB), center);
                    let aterm = f.fmul(Type::F64, adiff, Value::f64(RZ));
                    let s1 = f.fadd(Type::F64, pw, vterm);
                    let s2 = f.fadd(Type::F64, s1, hterm);
                    let s3 = f.fadd(Type::F64, s2, aterm);
                    let delta = f.fmul(Type::F64, s3, Value::f64(CAP));
                    let newt = f.fadd(Type::F64, center, delta);

                    let dslot = f.gep(dst, idx, 8);
                    f.store(Type::F64, newt, dslot);
                });
            });
            vec![dst, src]
        },
    );

    for_simple(&mut f, 0, cells, |f, i| {
        let slot = f.gep(finals[0], i, 8);
        let v = f.load(Type::F64, slot);
        f.output(Type::F64, v);
    });
    f.ret(None);
    f.finish();

    Workload {
        name: "hotspot",
        domain: "Physics Simulation",
        paper_loc: 218,
        module: mb.finish().expect("hotspot verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(dim: i32, steps: i32) -> Vec<f64> {
    let (temp0, power) = make_inputs(dim, 0);
    let n = dim as usize;
    let mut src = temp0;
    let mut dst = vec![0.0f64; n * n];
    let clamp = |x: i32| x.clamp(0, dim - 1) as usize;
    for _ in 0..steps {
        for r in 0..n {
            for c in 0..n {
                let center = src[r * n + c];
                let up = src[clamp(r as i32 - 1) * n + c];
                let down = src[clamp(r as i32 + 1) * n + c];
                let left = src[r * n + clamp(c as i32 - 1)];
                let right = src[r * n + clamp(c as i32 + 1)];
                let pw = power[r * n + c];
                let two_t = center * 2.0;
                let vterm = (up + down - two_t) * RY;
                let hterm = (left + right - two_t) * RX;
                let aterm = (AMB - center) * RZ;
                let delta = (pw + vterm + hterm + aterm) * CAP;
                dst[r * n + c] = center + delta;
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got = w.run().outputs;
        let expected: Vec<u64> = reference(6, 3).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn temperatures_stay_physical() {
        let out = reference(8, 5);
        assert!(out.iter().all(|t| *t > 100.0 && *t < 500.0));
    }
}
