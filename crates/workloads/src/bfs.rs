//! Breadth-First Search (`bfs`) — Rodinia's frontier-mask graph traversal
//! (Table IV: 203 LOC, Graph Algorithm).
//!
//! CSR adjacency, Rodinia-style mask arrays, rounds until the worst-case
//! diameter; the per-node cost (depth) array is output.

use crate::dsl::{for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{IcmpPred, ModuleBuilder, Type, Value};

/// Deterministic test graph: a chain `i ↔ i+1` plus two pseudo-random extra
/// out-edges per node. Returns CSR `(offsets, edges)`.
fn make_graph(n: i32) -> (Vec<i32>, Vec<i32>) {
    let mut input = InputStream::new(0xBF5);
    let n = n as usize;
    let mut adj: Vec<Vec<i32>> = vec![Vec::new(); n];
    for i in 0..n {
        if i + 1 < n {
            adj[i].push((i + 1) as i32);
            adj[i + 1].push(i as i32);
        }
        for _ in 0..2 {
            adj[i].push(input.next_below(n as u32) as i32);
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut edges = Vec::new();
    offsets.push(0);
    for a in &adj {
        edges.extend_from_slice(a);
        offsets.push(edges.len() as i32);
    }
    (offsets, edges)
}

/// Build `bfs` at the given scale.
pub fn build(scale: Scale) -> Workload {
    build_n(scale.pick(16, 48, 128))
}

/// Build `bfs` for `n` nodes.
pub fn build_n(n: i32) -> Workload {
    let (offsets, edges) = make_graph(n);

    let mut mb = ModuleBuilder::new("bfs");
    let goff = mb.global_i32s("offsets", &offsets);
    let gedge = mb.global_i32s("edges", &edges);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let poff = f.gep(Value::Global(goff), Value::i32(0), 1);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pedge = f.gep(Value::Global(gedge), Value::i32(0), 1);
    let nn = Value::i32(n);

    let cost = f.malloc(Value::i64(4 * i64::from(n)));
    let mask = f.malloc(Value::i64(4 * i64::from(n)));
    let newmask = f.malloc(Value::i64(4 * i64::from(n)));
    for_simple(&mut f, 0, nn, |f, v| {
        let c = f.gep(cost, v, 4);
        f.store(Type::I32, Value::i32(-1), c);
        let m = f.gep(mask, v, 4);
        f.store(Type::I32, Value::i32(0), m);
        let m2 = f.gep(newmask, v, 4);
        f.store(Type::I32, Value::i32(0), m2);
    });
    // Source node 0.
    f.store(Type::I32, Value::i32(0), cost);
    f.store(Type::I32, Value::i32(1), mask);

    // Worst-case-diameter rounds; idle rounds are no-ops.
    for_simple(&mut f, 0, nn, |f, _round| {
        for_simple(f, 0, nn, |f, v| {
            let mslot = f.gep(mask, v, 4);
            let mv = f.load(Type::I32, mslot);
            let active = f.icmp(IcmpPred::Eq, Type::I32, mv, Value::i32(1));
            let then_bb = f.create_block("expand");
            let merge_bb = f.create_block("next_v");
            f.cond_br(active, then_bb, merge_bb);
            f.switch_to(then_bb);
            f.store(Type::I32, Value::i32(0), mslot);
            let cslot = f.gep(cost, v, 4);
            let cv = f.load(Type::I32, cslot);
            let depth = f.add(Type::I32, cv, Value::i32(1));
            let o0 = f.gep(poff, v, 4);
            let lo = f.load(Type::I32, o0);
            let vp1 = f.add(Type::I32, v, Value::i32(1));
            let o1 = f.gep(poff, vp1, 4);
            let hi = f.load(Type::I32, o1);
            crate::dsl::for_range(f, lo, hi, &[], |f, e, _| {
                let eslot = f.gep(pedge, e, 4);
                let u = f.load(Type::I32, eslot);
                let uc = f.gep(cost, u, 4);
                let ucost = f.load(Type::I32, uc);
                let unvisited = f.icmp(IcmpPred::Slt, Type::I32, ucost, Value::i32(0));
                let upd = f.create_block("visit");
                let cont = f.create_block("cont");
                f.cond_br(unvisited, upd, cont);
                f.switch_to(upd);
                f.store(Type::I32, depth, uc);
                let um = f.gep(newmask, u, 4);
                f.store(Type::I32, Value::i32(1), um);
                f.br(cont);
                f.switch_to(cont);
                vec![]
            });
            f.br(merge_bb);
            f.switch_to(merge_bb);
        });
        // Promote the new frontier.
        for_simple(f, 0, nn, |f, v| {
            let nm = f.gep(newmask, v, 4);
            let nv = f.load(Type::I32, nm);
            let m = f.gep(mask, v, 4);
            f.store(Type::I32, nv, m);
            f.store(Type::I32, Value::i32(0), nm);
        });
    });

    for_simple(&mut f, 0, nn, |f, v| {
        let c = f.gep(cost, v, 4);
        let val = f.load(Type::I32, c);
        f.output(Type::I32, val);
    });
    f.free(cost);
    f.free(mask);
    f.free(newmask);
    f.ret(None);
    f.finish();

    Workload {
        name: "bfs",
        domain: "Graph Algorithm",
        paper_loc: 203,
        module: mb.finish().expect("bfs verifies"),
        args: vec![],
    }
}

/// Rust reference (same rounds algorithm).
pub fn reference(n: i32) -> Vec<i32> {
    let (offsets, edges) = make_graph(n);
    let n = n as usize;
    let mut cost = vec![-1i32; n];
    let mut mask = vec![0i32; n];
    let mut newmask = vec![0i32; n];
    cost[0] = 0;
    mask[0] = 1;
    for _round in 0..n {
        for v in 0..n {
            if mask[v] == 1 {
                mask[v] = 0;
                let depth = cost[v] + 1;
                for e in offsets[v]..offsets[v + 1] {
                    let u = edges[e as usize] as usize;
                    if cost[u] < 0 {
                        cost[u] = depth;
                        newmask[u] = 1;
                    }
                }
            }
        }
        for v in 0..n {
            mask[v] = newmask[v];
            newmask[v] = 0;
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let w = build(Scale::Tiny);
        let got: Vec<i32> = w.run().outputs.iter().map(|b| *b as u32 as i32).collect();
        assert_eq!(got, reference(16));
    }

    #[test]
    fn all_nodes_reachable_via_chain() {
        let got = reference(32);
        assert!(
            got.iter().all(|c| *c >= 0),
            "chain edges guarantee reachability"
        );
        assert_eq!(got[0], 0);
        assert!(got[1] <= 1);
    }

    #[test]
    fn depths_respect_triangle_inequality_on_chain() {
        let got = reference(24);
        for i in 1..got.len() {
            assert!(
                got[i] <= got[i - 1] + 1,
                "node {i}: {} vs {}",
                got[i],
                got[i - 1]
            );
        }
    }
}
