//! Mini-LULESH (`lulesh`) — a 1-D Lagrangian explicit shock-hydrodynamics
//! miniature of the DOE proxy app the paper evaluates (Table IV: 3,000 LOC,
//! Physics Modelling).
//!
//! A Sedov-style energy deposit in the first element drives a shock through
//! a 1-D staggered mesh: nodal velocities/positions integrate the pressure
//! gradient, element volumes follow the node motion, and an ideal-gas EOS
//! closes the system. Final element energies and pressures plus node
//! positions are output.

use crate::dsl::{for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{FunctionBuilder, IcmpPred, ModuleBuilder, Type, Value};

const GAMMA: f64 = 1.4;
const DT: f64 = 0.01;
const E0: f64 = 1.0;

/// Build `lulesh` at the given scale.
pub fn build(scale: Scale) -> Workload {
    let (elems, steps) = scale.pick((8, 4), (16, 8), (32, 12));
    build_mesh(elems, steps)
}

fn initial_energy(elems: i32) -> Vec<f64> {
    // Tiny random background energy plus the Sedov deposit in element 0.
    let mut input = InputStream::new(0x10135);
    let mut e = input.f64s(elems as usize, 0.001, 0.01);
    e[0] = E0;
    e
}

/// Build `lulesh` for an explicit mesh and step count.
pub fn build_mesh(elems: i32, steps: i32) -> Workload {
    let e_init = initial_energy(elems);
    let h0 = 1.0 / f64::from(elems);

    let mut mb = ModuleBuilder::new("lulesh");
    let ge = mb.global_f64s("e0", &e_init);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pe0 = f.gep(Value::Global(ge), Value::i32(0), 1);
    let ne = Value::i32(elems);
    let nnodes = Value::i32(elems + 1);

    let x = f.malloc(Value::i64(8 * (i64::from(elems) + 1)));
    let xd = f.malloc(Value::i64(8 * (i64::from(elems) + 1)));
    let e = f.malloc(Value::i64(8 * i64::from(elems)));
    let p = f.malloc(Value::i64(8 * i64::from(elems)));
    let v = f.malloc(Value::i64(8 * i64::from(elems)));

    // Mesh setup: x[i] = i·h0, xd = 0; e from the deposit; v = 1;
    // p = (γ−1)·e/v.
    for_simple(&mut f, 0, nnodes, |f, i| {
        let fi = f.sitofp(Type::I32, Type::F64, i);
        let xi = f.fmul(Type::F64, fi, Value::f64(h0));
        let xs = f.gep(x, i, 8);
        f.store(Type::F64, xi, xs);
        let xds = f.gep(xd, i, 8);
        f.store(Type::F64, Value::f64(0.0), xds);
    });
    for_simple(&mut f, 0, ne, |f, j| {
        let es0 = f.gep(pe0, j, 8);
        let ev = f.load(Type::F64, es0);
        let es = f.gep(e, j, 8);
        f.store(Type::F64, ev, es);
        let vs = f.gep(v, j, 8);
        f.store(Type::F64, Value::f64(1.0), vs);
        let pe = f.fmul(Type::F64, ev, Value::f64(GAMMA - 1.0));
        let ps = f.gep(p, j, 8);
        f.store(Type::F64, pe, ps);
    });

    let load_at = |f: &mut FunctionBuilder<'_>, buf: Value, i: Value| {
        let s = f.gep(buf, i, 8);
        f.load(Type::F64, s)
    };

    for_simple(&mut f, 0, Value::i32(steps), |f, _s| {
        // Nodal acceleration from the pressure gradient; leapfrog update.
        for_simple(f, 0, nnodes, |f, i| {
            let has_left = f.icmp(IcmpPred::Sgt, Type::I32, i, Value::i32(0));
            let im1 = f.sub(Type::I32, i, Value::i32(1));
            let li = f.select(Type::I32, has_left, im1, Value::i32(0));
            let pl_raw = load_at(f, p, li);
            let pl = f.select(Type::F64, has_left, pl_raw, Value::f64(0.0));
            let has_right = f.icmp(IcmpPred::Slt, Type::I32, i, ne);
            let ri = f.select(Type::I32, has_right, i, Value::i32(0));
            let pr_raw = load_at(f, p, ri);
            let pr = f.select(Type::F64, has_right, pr_raw, Value::f64(0.0));
            let force = f.fsub(Type::F64, pl, pr);
            // nodal mass = h0 (ρ₀ = 1)
            let accel = f.fdiv(Type::F64, force, Value::f64(h0));
            let dv = f.fmul(Type::F64, accel, Value::f64(DT));
            let xds = f.gep(xd, i, 8);
            let xdv = f.load(Type::F64, xds);
            let xd2 = f.fadd(Type::F64, xdv, dv);
            f.store(Type::F64, xd2, xds);
            let mv = f.fmul(Type::F64, xd2, Value::f64(DT));
            let xs = f.gep(x, i, 8);
            let xv = f.load(Type::F64, xs);
            let x2 = f.fadd(Type::F64, xv, mv);
            f.store(Type::F64, x2, xs);
        });
        // Element volume change, energy update, EOS.
        for_simple(f, 0, ne, |f, j| {
            let jp1 = f.add(Type::I32, j, Value::i32(1));
            let xr = load_at(f, x, jp1);
            let xl = load_at(f, x, j);
            let width = f.fsub(Type::F64, xr, xl);
            let newv = f.fdiv(Type::F64, width, Value::f64(h0));
            let vs = f.gep(v, j, 8);
            let oldv = f.load(Type::F64, vs);
            let dvol = f.fsub(Type::F64, newv, oldv);
            let ps = f.gep(p, j, 8);
            let pv = f.load(Type::F64, ps);
            let work = f.fmul(Type::F64, pv, dvol);
            let es = f.gep(e, j, 8);
            let ev = f.load(Type::F64, es);
            let e1 = f.fsub(Type::F64, ev, work);
            // Keep energy non-negative (LULESH's emin floor).
            let e2 = f.fmax(Type::F64, e1, Value::f64(0.0));
            f.store(Type::F64, e2, es);
            f.store(Type::F64, newv, vs);
            let num = f.fmul(Type::F64, e2, Value::f64(GAMMA - 1.0));
            let pnew = f.fdiv(Type::F64, num, newv);
            let pclamped = f.fmax(Type::F64, pnew, Value::f64(0.0));
            f.store(Type::F64, pclamped, ps);
        });
    });

    for_simple(&mut f, 0, ne, |f, j| {
        let ev = load_at(f, e, j);
        f.output(Type::F64, ev);
        let pv = load_at(f, p, j);
        f.output(Type::F64, pv);
    });
    for_simple(&mut f, 0, nnodes, |f, i| {
        let xv = load_at(f, x, i);
        f.output(Type::F64, xv);
    });
    f.ret(None);
    f.finish();

    Workload {
        name: "lulesh",
        domain: "Physics Modelling",
        paper_loc: 3000,
        module: mb.finish().expect("lulesh verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(elems: i32, steps: i32) -> Vec<f64> {
    let h0 = 1.0 / f64::from(elems);
    let n = elems as usize;
    let mut x: Vec<f64> = (0..=n).map(|i| i as f64 * h0).collect();
    let mut xd = vec![0.0f64; n + 1];
    let mut e = initial_energy(elems);
    let mut v = vec![1.0f64; n];
    let mut p: Vec<f64> = e.iter().map(|ev| ev * (GAMMA - 1.0)).collect();
    for _ in 0..steps {
        for i in 0..=n {
            let pl = if i > 0 { p[i - 1] } else { 0.0 };
            let pr = if i < n { p[i] } else { 0.0 };
            let accel = (pl - pr) / h0;
            xd[i] += accel * DT;
            x[i] += xd[i] * DT;
        }
        for j in 0..n {
            let newv = (x[j + 1] - x[j]) / h0;
            let dvol = newv - v[j];
            let work = p[j] * dvol;
            e[j] = (e[j] - work).max(0.0);
            v[j] = newv;
            p[j] = (e[j] * (GAMMA - 1.0) / newv).max(0.0);
        }
    }
    let mut out = Vec::new();
    for j in 0..n {
        out.push(e[j]);
        out.push(p[j]);
    }
    out.extend(x);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got = w.run().outputs;
        let expected: Vec<u64> = reference(8, 4).iter().map(|f| f.to_bits()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn mesh_nodes_stay_ordered() {
        let elems = 16;
        let out = reference(elems, 8);
        let x = &out[2 * elems as usize..];
        for w in x.windows(2) {
            assert!(w[0] < w[1], "shock must not tangle the mesh: {w:?}");
        }
    }

    #[test]
    fn shock_propagates_rightward() {
        let elems = 16usize;
        let out = reference(16, 8);
        let e: Vec<f64> = (0..elems).map(|j| out[2 * j]).collect();
        // Energy must have spread beyond element 0 but stay concentrated left.
        let initial = initial_energy(16);
        assert!(
            e[1] > initial[1],
            "element 1 received energy: {} vs {}",
            e[1],
            initial[1]
        );
        assert!(e[0] < E0, "element 0 lost energy doing work");
        assert!(e[elems - 1] < 0.02, "far field still quiet");
    }
}
