//! LU Decomposition (`lud`) — Rodinia's in-place Doolittle factorization
//! (Table IV: 174 LOC, Linear Algebra).
//!
//! The input matrix is made diagonally dominant so no pivoting is needed
//! (as in Rodinia's generated inputs); the factored matrix is output.

use crate::dsl::{for_range, for_simple, InputStream};
use crate::workload::{Scale, Workload};
use epvf_ir::{ModuleBuilder, Type, Value};

/// Build `lud` at the given scale.
pub fn build(scale: Scale) -> Workload {
    build_variant(scale, 0)
}

/// Alternate-input build (identical static structure; see `mm`).
pub fn build_variant(scale: Scale, variant: u64) -> Workload {
    build_n_variant(scale.pick(6, 10, 14), variant)
}

fn make_input(n: i32, variant: u64) -> Vec<f64> {
    let mut input = InputStream::new(0x10D ^ variant.wrapping_mul(0x9E37_79B9));
    let mut a = input.f64s((n * n) as usize, 0.0, 1.0);
    for i in 0..n as usize {
        a[i * n as usize + i] += f64::from(n); // diagonal dominance
    }
    a
}

/// Build `lud` for an `n×n` matrix.
pub fn build_n(n: i32) -> Workload {
    build_n_variant(n, 0)
}

/// [`build_n`] with an input-data variant.
pub fn build_n_variant(n: i32, variant: u64) -> Workload {
    let a_init = make_input(n, variant);

    let mut mb = ModuleBuilder::new("lud");
    let ga = mb.global_f64s("a", &a_init);
    let mut f = mb.function("main", vec![], None);
    // Materialize the global's base address into a register, as a
    // compiled program would.
    let pa = f.gep(Value::Global(ga), Value::i32(0), 1);
    let nn = Value::i32(n);

    // Work in heap memory (copied from the global input).
    let a = f.malloc(Value::i64(8 * i64::from(n) * i64::from(n)));
    for_simple(&mut f, 0, Value::i32(n * n), |f, i| {
        let s = f.gep(pa, i, 8);
        let v = f.load(Type::F64, s);
        let d = f.gep(a, i, 8);
        f.store(Type::F64, v, d);
    });

    for_simple(&mut f, 0, nn, |f, k| {
        let krow = f.mul(Type::I32, k, nn);
        let kk = f.add(Type::I32, krow, k);
        let kkslot = f.gep(a, kk, 8);
        let kp1 = f.add(Type::I32, k, Value::i32(1));
        for_range(f, kp1, nn, &[], |f, i, _| {
            let irow = f.mul(Type::I32, i, nn);
            let ik = f.add(Type::I32, irow, k);
            let ikslot = f.gep(a, ik, 8);
            let aik = f.load(Type::F64, ikslot);
            let akk = f.load(Type::F64, kkslot);
            let l = f.fdiv(Type::F64, aik, akk);
            f.store(Type::F64, l, ikslot);
            for_range(f, kp1, nn, &[], |f, j, _| {
                let kj = f.add(Type::I32, krow, j);
                let kjslot = f.gep(a, kj, 8);
                let akj = f.load(Type::F64, kjslot);
                let ij = f.add(Type::I32, irow, j);
                let ijslot = f.gep(a, ij, 8);
                let aij = f.load(Type::F64, ijslot);
                let prod = f.fmul(Type::F64, l, akj);
                let upd = f.fsub(Type::F64, aij, prod);
                f.store(Type::F64, upd, ijslot);
                vec![]
            });
            vec![]
        });
    });

    for_simple(&mut f, 0, Value::i32(n * n), |f, i| {
        let s = f.gep(a, i, 8);
        let v = f.load(Type::F64, s);
        f.output(Type::F64, v);
    });
    f.free(a);
    f.ret(None);
    f.finish();

    Workload {
        name: "lud",
        domain: "Linear Algebra",
        paper_loc: 174,
        module: mb.finish().expect("lud verifies"),
        args: vec![],
    }
}

/// Rust reference (same operation order).
pub fn reference(n: i32) -> Vec<f64> {
    let mut a = make_input(n, 0);
    let n = n as usize;
    for k in 0..n {
        for i in k + 1..n {
            let l = a[i * n + k] / a[k * n + k];
            a[i * n + k] = l;
            for j in k + 1..n {
                a[i * n + j] -= l * a[k * n + j];
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_bit_exactly() {
        let w = build(Scale::Tiny);
        let got: Vec<u64> = w.run().outputs;
        let expected: Vec<u64> = reference(6).iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn lu_reconstructs_original() {
        // L·U must reproduce the input matrix (numerically).
        let n = 6usize;
        let lu = reference(6);
        let orig = make_input(6, 0);
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    if k <= j && k <= i {
                        sum += l * u;
                    }
                }
                assert!(
                    (sum - orig[i * n + j]).abs() < 1e-9,
                    "A[{i}][{j}]: {sum} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }
}
