//! Input variants must keep the static program identical (only global
//! initializer bytes may differ) so §V protection sets transfer.

use epvf_workloads::{by_name, by_name_variant, Scale};

#[test]
fn variants_share_static_structure() {
    for name in ["mm", "pathfinder", "hotspot", "lud", "nw"] {
        let a = by_name(name, Scale::Tiny).expect("known");
        let b = by_name_variant(name, Scale::Tiny, 1).expect("variant");
        assert_eq!(
            a.module.functions, b.module.functions,
            "{name}: code identical"
        );
        assert_eq!(a.module.n_static_insts, b.module.n_static_insts, "{name}");
        assert_eq!(a.module.globals.len(), b.module.globals.len(), "{name}");
        let mut any_data_differs = false;
        for (ga, gb) in a.module.globals.iter().zip(&b.module.globals) {
            assert_eq!(ga.size, gb.size, "{name}: global sizes equal");
            if ga.init != gb.init {
                any_data_differs = true;
            }
        }
        assert!(
            any_data_differs,
            "{name}: variant must actually change the input"
        );
        // And the programs behave differently on the different data.
        assert_ne!(a.run().outputs, b.run().outputs, "{name}");
    }
}

#[test]
fn variant_zero_is_the_default_build() {
    for name in ["mm", "lud"] {
        let a = by_name(name, Scale::Tiny).expect("known");
        let b = by_name_variant(name, Scale::Tiny, 0).expect("variant 0");
        assert_eq!(a.module, b.module);
    }
}
