//! Every benchmark must survive the textual round trip: print → parse →
//! print identity, and identical interpreter behaviour.

use epvf_interp::{ExecConfig, Interpreter};
use epvf_ir::parse_module;
use epvf_workloads::{extended_suite, Scale, Workload};

#[test]
fn all_workloads_round_trip_textually() {
    for w in extended_suite(Scale::Tiny) {
        let text = w.module.to_string();
        let parsed =
            parse_module(&text).unwrap_or_else(|e| panic!("{}: parse failed: {e}", w.name));
        assert_eq!(parsed.to_string(), text, "{}: reprint differs", w.name);
    }
}

#[test]
fn parsed_workloads_behave_identically() {
    for w in extended_suite(Scale::Tiny) {
        let parsed = parse_module(&w.module.to_string()).expect("parses");
        let orig = w.run();
        let re = Interpreter::new(&parsed, ExecConfig::default())
            .run(Workload::ENTRY, &w.args)
            .expect("runs");
        assert_eq!(orig.outputs, re.outputs, "{}", w.name);
        assert_eq!(orig.dyn_insts, re.dyn_insts, "{}", w.name);
    }
}
