//! Quickstart: build a tiny program in the mini-IR, run the full ePVF
//! pipeline on it, and read off PVF, ePVF, and the predicted crash rate.
//!
//! ```sh
//! cargo run --release -p epvf-bench --example quickstart
//! ```

use epvf_core::{analyze, EpvfConfig};
use epvf_interp::{ExecConfig, Interpreter};
use epvf_ir::{IcmpPred, ModuleBuilder, Type, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a program: sum an array through computed addressing.
    //
    //    int acc = 0;
    //    int *buf = malloc(4 * N);
    //    for (i = 0; i < N; i++) buf[i] = 3*i;
    //    for (i = 0; i < N; i++) acc += buf[i];
    //    output(acc);
    let n = 64;
    let mut mb = ModuleBuilder::new("quickstart");
    let mut f = mb.function("main", vec![], None);
    let buf = f.malloc(Value::i64(4 * n));

    let entry = f.current_block();
    let (h1, b1, x1) = (
        f.create_block("h1"),
        f.create_block("b1"),
        f.create_block("x1"),
    );
    f.br(h1);
    f.switch_to(h1);
    let i = f.phi(Type::I32, vec![(entry, Value::i32(0))]);
    let c = f.icmp(IcmpPred::Slt, Type::I32, i, Value::i32(n as i32));
    f.cond_br(c, b1, x1);
    f.switch_to(b1);
    let v = f.mul(Type::I32, i, Value::i32(3));
    let slot = f.gep(buf, i, 4);
    f.store(Type::I32, v, slot);
    let i2 = f.add(Type::I32, i, Value::i32(1));
    f.add_incoming(i, b1, i2);
    f.br(h1);
    f.switch_to(x1);

    let (h2, b2, x2) = (
        f.create_block("h2"),
        f.create_block("b2"),
        f.create_block("x2"),
    );
    f.br(h2);
    f.switch_to(h2);
    let j = f.phi(Type::I32, vec![(x1, Value::i32(0))]);
    let acc = f.phi(Type::I32, vec![(x1, Value::i32(0))]);
    let c2 = f.icmp(IcmpPred::Slt, Type::I32, j, Value::i32(n as i32));
    f.cond_br(c2, b2, x2);
    f.switch_to(b2);
    let s = f.gep(buf, j, 4);
    let lv = f.load(Type::I32, s);
    let acc2 = f.add(Type::I32, acc, lv);
    let j2 = f.add(Type::I32, j, Value::i32(1));
    f.add_incoming(j, b2, j2);
    f.add_incoming(acc, b2, acc2);
    f.br(h2);
    f.switch_to(x2);
    f.output(Type::I32, acc);
    f.ret(None);
    f.finish();
    let module = mb.finish()?;

    // 2. Golden run with a full dynamic trace.
    let interp = Interpreter::new(&module, ExecConfig::default());
    let golden = interp.golden_run("main", &[])?;
    println!("golden output : {}", golden.outputs[0]);
    println!("dyn IR insts  : {}", golden.dyn_insts);

    // 3. The ePVF methodology: DDG → ACE → crash + propagation models.
    let result = analyze(
        &module,
        golden.trace.as_ref().expect("traced"),
        EpvfConfig::default(),
    );
    let m = &result.metrics;
    println!("DDG nodes     : {}", m.ddg_nodes);
    println!("ACE nodes     : {}", m.ace_nodes);
    println!("PVF           : {:.3}", m.pvf);
    println!(
        "ePVF          : {:.3}  ({} crash bits removed)",
        m.epvf, m.crash_register_bits
    );
    println!("crash rate est: {:.1}%", 100.0 * m.crash_rate_estimate);

    assert!(m.epvf < m.pvf, "ePVF is a strictly tighter bound here");
    Ok(())
}
