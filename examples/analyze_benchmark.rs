//! End-to-end resilience analysis of one paper benchmark: golden run, ePVF
//! analysis, fault-injection campaign, and the recall/precision validation
//! of the crash prediction (paper §IV).
//!
//! ```sh
//! cargo run --release -p epvf-bench --example analyze_benchmark [name]
//! ```
//!
//! `name` defaults to `pathfinder` — the benchmark behind the paper's
//! running example.

use epvf_core::{analyze, EpvfConfig};
use epvf_llfi::{precision_study, recall_study, Campaign, CampaignConfig};
use epvf_workloads::{by_name, Scale, Workload};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pathfinder".to_string());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown benchmark {name}; try pathfinder, mm, nw, lud, hotspot, …");
        std::process::exit(2);
    };
    println!("benchmark      : {} ({})", w.name, w.domain);

    // Golden run + ePVF analysis.
    let campaign = Campaign::new(
        &w.module,
        Workload::ENTRY,
        &w.args,
        CampaignConfig::default(),
    )
    .expect("workload runs");
    let trace = campaign.golden().trace.as_ref().expect("traced");
    println!("dyn IR insts   : {}", trace.len());
    let result = analyze(&w.module, trace, EpvfConfig::default());
    let m = &result.metrics;
    println!(
        "ACE nodes      : {} of {} DDG nodes",
        m.ace_nodes, m.ddg_nodes
    );
    println!("PVF / ePVF     : {:.3} / {:.3}", m.pvf, m.epvf);
    println!(
        "analysis time  : {:.1} ms graph + {:.1} ms models",
        m.graph_time.as_secs_f64() * 1e3,
        m.model_time.as_secs_f64() * 1e3
    );

    // Fault-injection ground truth.
    let fi = campaign.run(1500, 42);
    println!(
        "FI outcomes    : crash {:.1}%  SDC {:.1}%  hang {:.1}%  benign {:.1}%",
        100.0 * fi.crash_rate(),
        100.0 * fi.sdc_rate(),
        100.0 * fi.hang_rate(),
        100.0 * fi.benign_rate()
    );
    let [sf, a, mma, ae] = fi.crash_kind_fractions();
    println!(
        "crash classes  : SF {:.1}%  A {:.1}%  MMA {:.1}%  AE {:.1}%",
        100.0 * sf,
        100.0 * a,
        100.0 * mma,
        100.0 * ae
    );

    // Model accuracy vs ground truth (paper Figs. 6–7).
    let recall = recall_study(&fi, &result.crash_map);
    println!(
        "recall         : {:.1}%  ({} of {} crashes predicted)",
        100.0 * recall.recall(),
        recall.true_positives,
        recall.true_positives + recall.false_negatives
    );
    let precision = precision_study(&campaign, &result.crash_map, 500, 7);
    println!(
        "precision      : {:.1}%  ({} of {} targeted injections crashed)",
        100.0 * precision.precision(),
        precision.crashed,
        precision.injected
    );
    println!(
        "crash rate     : model {:.1}% vs FI {:.1}%",
        100.0 * m.crash_rate_estimate,
        100.0 * fi.crash_rate()
    );
}
