//! Explore the simulated Linux crash semantics interactively-ish: show the
//! memory map of a running program, then probe which single-bit flips of a
//! stack and a heap address the crash model declares fatal — and verify a
//! few against the live memory system.
//!
//! ```sh
//! cargo run --release -p epvf-bench --example crash_model_explorer
//! ```

use epvf_core::{check_boundary, CrashModelConfig};
use epvf_interp::MemAccessRec;
use epvf_memsim::{MemConfig, SimMemory, STACK_GUARD_WINDOW};

fn main() {
    let mut mem = SimMemory::new(MemConfig::default());
    let heap_buf = mem.malloc(4096).expect("allocates");
    let sp = mem.stack_top() - 4096;
    mem.grow_stack_to(sp).expect("stack grows");
    let stack_slot = sp + 64;
    mem.write(stack_slot, 8, 1, sp).expect("stack store");
    mem.write(heap_buf, 8, 2, sp).expect("heap store");

    println!("simulated /proc/self/maps:");
    print!("{}", mem.map().render());
    println!("SP = {sp:#x}; stack guard window = SP − {STACK_GUARD_WINDOW:#x}");

    for (label, addr) in [("heap", heap_buf), ("stack", stack_slot)] {
        let access = MemAccessRec {
            addr,
            size: 8,
            is_store: false,
            sp,
            map: std::sync::Arc::new(mem.snapshot_map()),
        };
        let full = check_boundary(&access, CrashModelConfig::default());
        let naive = check_boundary(
            &access,
            CrashModelConfig {
                stack_rule: false,
                ..CrashModelConfig::default()
            },
        );
        println!("\n{label} address {addr:#x}:");
        println!("  full model valid range : {full}");
        println!("  naive model valid range: {naive}");
        let crash_bits = full.crash_bits(addr, 64);
        println!(
            "  crash bits (full model) : {} of 64 → {:?}…",
            crash_bits.len(),
            &crash_bits[..crash_bits.len().min(8)]
        );
        // Verify the model's verdict on a few interesting bits against the
        // live memory system.
        for bit in [2u8, 13, 17, 40] {
            let flipped = addr ^ (1u64 << bit);
            let predicted = !full.contains(flipped);
            let actual = mem.clone().read(flipped, 8, sp).is_err();
            println!(
                "  flip bit {bit:2}: {flipped:#014x}  predicted {}  actual {}",
                if predicted { "CRASH " } else { "ok    " },
                if actual { "CRASH" } else { "ok" },
            );
        }
    }
}
