//! The §V case study on one kernel: rank instructions by ePVF, duplicate
//! the top of the list under a 24% overhead budget, and measure how the
//! SDC rate moves compared with hot-path duplication.
//!
//! ```sh
//! cargo run --release -p epvf-bench --example protect_kernel [name]
//! ```

use epvf_core::{analyze, per_instruction_scores, AceConfig, EpvfConfig};
use epvf_llfi::{Campaign, CampaignConfig};
use epvf_protect::{plan_protection, rank_instructions, RankingStrategy};
use epvf_workloads::{by_name, Scale, Workload};

const BUDGET: f64 = 0.24;
const RUNS: usize = 1500;

fn sdc_rate(module: &epvf_ir::Module, args: &[u64]) -> (f64, f64) {
    let c = Campaign::new(module, Workload::ENTRY, args, CampaignConfig::default())
        .expect("module runs");
    let fi = c.run(RUNS, 42);
    (fi.sdc_rate(), fi.detected_rate())
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lud".to_string());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown benchmark {name}");
        std::process::exit(2);
    };
    println!(
        "protecting {} with a {:.0}% overhead budget",
        w.name,
        BUDGET * 100.0
    );

    let campaign = Campaign::new(
        &w.module,
        Workload::ENTRY,
        &w.args,
        CampaignConfig::default(),
    )
    .expect("workload runs");
    let trace = campaign.golden().trace.as_ref().expect("traced");
    // Data-only ACE roots for the ranking (see DESIGN.md §5).
    let analysis = analyze(
        &w.module,
        trace,
        EpvfConfig {
            ace: AceConfig {
                include_control: false,
            },
            ..EpvfConfig::default()
        },
    );
    let scores = per_instruction_scores(
        &w.module,
        trace,
        &analysis.ddg,
        &analysis.ace,
        &analysis.crash_map,
    );

    let (base_sdc, _) = sdc_rate(&w.module, &w.args);
    println!("unprotected   : SDC {:.1}%", 100.0 * base_sdc);

    for (label, strategy) in [
        ("hot-path", RankingStrategy::HotPath),
        ("ePVF", RankingStrategy::Epvf),
        ("random", RankingStrategy::Random(9)),
    ] {
        let ranking = rank_instructions(strategy, &scores);
        let plan = plan_protection(
            &w.module,
            Workload::ENTRY,
            &w.args,
            &ranking,
            BUDGET,
            usize::MAX,
        );
        let (sdc, det) = sdc_rate(&plan.module, &w.args);
        println!(
            "{label:13} : SDC {:.1}%  detected {:.1}%  ({} insts, {:.1}% overhead)",
            100.0 * sdc,
            100.0 * det,
            plan.protected.len(),
            100.0 * plan.overhead
        );
    }
}
