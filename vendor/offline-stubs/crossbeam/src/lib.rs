//! Offline stand-in for `crossbeam`, providing only [`scope`] with the
//! crossbeam 0.8 signature (`scope.spawn(|scope| ..)`,
//! `handle.join() -> thread::Result<T>`). Implemented the same way
//! upstream does it: closures are boxed, lifetime-erased to `'static`
//! for `std::thread::spawn`, and the scope joins every spawned thread
//! before returning, which is what makes the erasure sound.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// Pointer wrapper so the scope reference can cross the spawn boundary;
/// `Scope` is `Sync`, and the scope outlives every worker by construction.
struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}

/// A scope in which borrowed-data threads can be spawned.
pub struct Scope<'env> {
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    _env: PhantomData<&'env mut &'env ()>,
}

/// Handle to one scoped thread; `join` returns the closure's result or
/// its panic payload.
pub struct ScopedJoinHandle<'scope, T> {
    rx: mpsc::Receiver<thread::Result<T>>,
    _scope: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread and return its result (`Err` if it panicked).
    pub fn join(self) -> thread::Result<T> {
        match self.rx.recv() {
            Ok(r) => r,
            // Worker vanished without reporting: surface as a panic-shaped
            // error so callers' `.ok()` filtering behaves as with upstream.
            Err(_) => Err(Box::new("scoped worker terminated without a result")),
        }
    }
}

impl<'env> Scope<'env> {
    /// Spawn a thread that may borrow from `'env`; joined by scope exit at
    /// the latest.
    pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        let (tx, rx) = mpsc::channel();
        let scope_ptr = SendPtr(self as *const Scope<'env>);
        let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // Capture the whole wrapper, not just its (non-Send) pointer
            // field, so the closure stays `Send` under disjoint capture.
            let scope_ptr = scope_ptr;
            let scope_ref: &Scope<'env> = unsafe { &*scope_ptr.0 };
            let result = catch_unwind(AssertUnwindSafe(|| f(scope_ref)));
            let _ = tx.send(result);
        });
        // SAFETY: `scope()` joins every spawned thread before it returns,
        // so the closure (and everything it borrows from `'env`) outlives
        // the thread despite the erased lifetime.
        let closure: Box<dyn FnOnce() + Send + 'static> =
            unsafe { std::mem::transmute(closure) };
        let handle = thread::spawn(closure);
        self.handles.lock().expect("scope handle list").push(handle);
        ScopedJoinHandle {
            rx,
            _scope: PhantomData,
        }
    }
}

/// Create a scope for spawning threads that borrow from the environment.
/// All spawned threads are joined before `scope` returns. Returns `Err`
/// only if the closure `f` itself panics (worker panics are reported via
/// the individual `join` results), matching how this workspace uses the
/// upstream API.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        handles: Mutex::new(Vec::new()),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Join everything regardless of how `f` exited; required for the
    // lifetime erasure in `spawn` to be sound.
    loop {
        let drained: Vec<_> = {
            let mut guard = scope.handles.lock().expect("scope handle list");
            std::mem::take(&mut *guard)
        };
        if drained.is_empty() {
            break;
        }
        for h in drained {
            // Worker panics were captured by catch_unwind inside the
            // worker; the raw thread should never panic.
            let _ = h.join();
        }
    }
    match result {
        Ok(r) => Ok(r),
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn borrows_and_joins() {
        let data: Vec<u64> = (0..1000).collect();
        let counter = AtomicUsize::new(0);
        let total = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let data = &data;
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        data.iter().skip(t).step_by(4).sum::<u64>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 1000 * 999 / 2);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_is_reported_via_join() {
        let r = scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
