//! Offline stand-in for `criterion`. Provides the API surface used by the
//! workspace benches (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, `black_box`) with a plain measure-and-print loop instead
//! of criterion's statistical machinery. `--test` on the command line (as
//! passed by the CI smoke job `cargo bench -- --test`) runs each closure
//! once and reports `ok`.

use std::hint;
use std::time::Instant;

/// Opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; only the shape is honored here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Units-of-work annotation; recorded for display only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Bench driver handed to each closure.
pub struct Bencher {
    samples: u64,
    test_mode: bool,
}

impl Bencher {
    /// Time `f` over the configured number of samples (once in `--test`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = if self.test_mode { 1 } else { self.samples };
        for _ in 0..n {
            black_box(f());
        }
    }

    /// Timed routine with untimed setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let n = if self.test_mode { 1 } else { self.samples };
        for _ in 0..n {
            let input = setup();
            black_box(routine(input));
        }
    }
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the number of iterations per bench.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
        };
        let start = Instant::now();
        f(&mut b);
        let elapsed = start.elapsed();
        if self.test_mode {
            println!("bench {name}: ok");
        } else {
            let iters = self.sample_size.max(1);
            println!(
                "bench {name}: {:.3} ms/iter ({} iters)",
                elapsed.as_secs_f64() * 1e3 / iters as f64,
                iters
            );
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            group: name.to_string(),
        }
    }
}

/// A named group; benches print as `group/name`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Record the units of work per iteration (display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        self.c.bench_function(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a bench group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
