//! Offline stand-in for `serde`. The workspace only *derives*
//! `Serialize`/`Deserialize` (for API parity with upstream ePVF/LLFI
//! tooling); nothing ever drives a serializer, so the traits are empty
//! markers and the derives (from the sibling `serde_derive` stub) expand
//! to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
