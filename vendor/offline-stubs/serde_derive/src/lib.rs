//! Offline stand-in for `serde_derive`. The workspace derives
//! `Serialize`/`Deserialize` on IR types for API parity with the upstream
//! repos it mirrors, but never calls a serializer (all JSON is hand
//! rolled in `epvf-telemetry`), so the derives can expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
