//! Offline stand-in for the `rand` crate.
//!
//! The container has no crates.io access, so the workspace path-patches
//! `rand` to this stub. It implements only the surface the repo uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, and `seq::SliceRandom::shuffle` — with a deterministic
//! xoshiro256++ generator. Determinism is the only contract the tests
//! rely on (same seed ⇒ same sequence); statistical quality is adequate
//! for sampling campaigns but this is not the upstream implementation.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed to 32 bytes for this stub).
    type Seed;

    /// Build a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a single `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53-bit uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that supports uniform single-value sampling.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` via multiply-shift with rejection of the
/// biased region (Lemire); `n == 0` panics like upstream.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    ///
    /// Not the upstream ChaCha-based `StdRng`; only the same-seed ⇒
    /// same-sequence contract is preserved.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Fisher–Yates shuffling for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_clones_and_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..64).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17u32);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(1..=8usize);
            assert!((1..=8).contains(&y));
            let z = rng.gen_range(-4..5i32);
            assert!((-4..5).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
