//! Offline stand-in for `proptest`. Implements the subset the workspace
//! uses — `proptest!` with optional `#![proptest_config(..)]`,
//! `prop_assert*`, `any`, `Just`, ranges and tuples as strategies,
//! `prop_map`, `prop::collection::vec`, `prop::sample::{select, Index}` —
//! over a seeded deterministic RNG. No shrinking: a failing case reports
//! its case number and message and the fixed per-test seed makes it
//! reproducible by rerunning the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values; the stub's analogue of proptest's `Strategy`
/// (generation only, no shrink trees).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut StdRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for a primitive (via raw RNG words).
#[derive(Debug, Clone, Copy)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector with length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Arbitrary, Strategy, StdRng};
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from `options` (must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// A deferred index: a random fraction scaled to a collection length
    /// at use time via [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `[0, len)`; panics if `len == 0` like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    /// Whole-domain strategy for [`Index`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyIndex;

    impl Strategy for AnyIndex {
        type Value = Index;

        fn generate(&self, rng: &mut StdRng) -> Index {
            Index(rand::RngCore::next_u64(rng))
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyIndex;

        fn arbitrary() -> Self::Strategy {
            AnyIndex
        }
    }
}

/// Seed derivation for a property: FNV-1a over the test name, so each
/// property walks its own deterministic sequence.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn __run_proptest<F>(cfg: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(name_seed(name));
    for case in 0..cfg.cases {
        if let Err(e) = body(&mut rng) {
            panic!(
                "property '{name}' failed at case {}/{}: {e}",
                case + 1,
                cfg.cases
            );
        }
    }
}

/// Define property tests; supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn` items whose
/// arguments are drawn from strategies with `pat in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__run_proptest($cfg, stringify!($name), |__rng| {
                let ($($arg,)+) =
                    $crate::Strategy::generate(&($($strat,)+), __rng);
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Discard a case whose precondition fails. Without shrink/reject
/// machinery the stub simply skips the rest of the body (the case counts
/// toward the total, matching proptest's "rejected cases still consume
/// the budget" behaviour closely enough for these suites).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 1u32..=4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(
            (prop::sample::select(vec![2u64, 4, 8]), any::<prop::sample::Index>()),
            0..9,
        )) {
            prop_assert!(v.len() < 9);
            for (p, idx) in v {
                prop_assert!(p.is_power_of_two());
                prop_assert!(idx.index(5) < 5);
            }
        }

        #[test]
        fn mapped(v in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 200, "v was {}", v);
        }
    }
}
